package actuary

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"time"

	"chipletactuary/internal/dtod"
	"chipletactuary/internal/sweep"
	"chipletactuary/internal/wirejson"
	"chipletactuary/search"
)

// Wire protocol v1: the canonical, transport-neutral JSON forms of
// the evaluation API. Request, Result, Question, *Error, SweepBest
// and TotalCost all implement json.Marshaler/json.Unmarshaler with
// these guarantees:
//
//   - Round trip: Unmarshal(Marshal(v)) reconstructs v exactly, for
//     every value the Session can produce (errors keep their code,
//     location and message; the wrapped Go error chain itself cannot
//     cross a process boundary).
//   - Strictness: unknown fields, unknown question names, unknown
//     scheme/flow/policy/topology labels and malformed unions are
//     rejected at decode time, so client/server schema drift surfaces
//     as an error instead of silent data loss.
//   - Shared vocabulary: enum labels on the wire are exactly the
//     strings the scenario schema (ScenarioConfig) accepts —
//     "total-cost", "MCM", "chip-last", "per-system-unit" — parsed by
//     the same functions, so scenario files and the wire format
//     cannot drift apart.
//
// cmd/actuaryd serves this protocol over HTTP (see the server
// package); the client package speaks it back. Programs embedding the
// library can also persist Requests/Results with plain encoding/json.

// MarshalText implements encoding.TextMarshaler with the names
// ParseQuestion accepts; unknown question values are rejected.
func (q Question) MarshalText() ([]byte, error) {
	switch q {
	case QuestionTotalCost, QuestionRE, QuestionWafers, QuestionCrossoverQuantity,
		QuestionOptimalChipletCount, QuestionAreaCrossover, QuestionSweepBest,
		QuestionSearchBest:
		return []byte(q.String()), nil
	default:
		return nil, fmt.Errorf("actuary: cannot marshal unknown question %d", int(q))
	}
}

// UnmarshalText implements encoding.TextUnmarshaler via ParseQuestion.
func (q *Question) UnmarshalText(text []byte) error {
	parsed, err := ParseQuestion(string(text))
	if err != nil {
		return err
	}
	*q = parsed
	return nil
}

// QuestionInfo describes one question of the evaluation API for
// discovery (GET /v1/questions).
type QuestionInfo struct {
	// Name is the canonical wire name.
	Name string `json:"name"`
	// Aliases are the alternative names ParseQuestion accepts.
	Aliases []string `json:"aliases,omitempty"`
	// Summary is a one-line human description.
	Summary string `json:"summary"`
	// Fields lists the Request fields the question consumes.
	Fields []string `json:"fields"`
	// Shardable reports whether the question accepts the
	// request-level shard_index/shard_count fields — a partial answer
	// over one grid stripe that merges with its siblings into the
	// whole-grid answer. Scenario-level sharding (the scenario's own
	// shard_index/shard_count) partitions the request stream of every
	// question regardless.
	Shardable bool `json:"shardable"`
}

// UnmarshalJSON implements json.Unmarshaler, rejecting unknown fields
// so a drifted /v1/questions self-description fails loudly instead of
// silently dropping what a newer server advertises.
func (q *QuestionInfo) UnmarshalJSON(data []byte) error {
	type wire QuestionInfo
	var w wire
	if err := wirejson.UnmarshalStrict(data, &w); err != nil {
		return fmt.Errorf("actuary: decoding question info: %w", err)
	}
	*q = QuestionInfo(w)
	return nil
}

// Questions enumerates the evaluation API, in Question order.
func Questions() []QuestionInfo {
	return []QuestionInfo{
		{Name: "total-cost", Aliases: []string{"total"},
			Summary: "RE plus amortized NRE per unit of one system (§3.2 + §3.3)",
			Fields:  []string{"system", "policy"}},
		{Name: "re", Aliases: []string{"recurring"},
			Summary: "recurring manufacturing cost per unit of one system (§3.2)",
			Fields:  []string{"system"}},
		{Name: "wafers", Aliases: nil,
			Summary: "wafer starts per node to ship a production quantity",
			Fields:  []string{"system", "quantity"}},
		{Name: "crossover-quantity", Aliases: []string{"payback"},
			Summary: "production quantity where the challenger's total cost drops to the incumbent's (§4.2)",
			Fields:  []string{"incumbent", "challenger"}},
		{Name: "optimal-chiplet-count", Aliases: []string{"optimal-k"},
			Summary: "partition-count sweep 1..max_k with the cheapest point (§6)",
			Fields:  []string{"node", "module_area_mm2", "max_k", "scheme", "d2d", "quantity"}},
		{Name: "area-crossover", Aliases: []string{"turning"},
			Summary: "module area where k chiplets start beating the monolithic SoC on RE (§4.1)",
			Fields:  []string{"node", "k", "scheme", "d2d", "lo_mm2", "hi_mm2"}},
		{Name: "sweep-best", Aliases: []string{"best"},
			Summary: "top-K, Pareto front and summary of a lazily streamed design-space grid",
			Fields:  []string{"grid", "top_k", "policy", "shard_index", "shard_count"}, Shardable: true},
		{Name: "search-best", Aliases: []string{"search"},
			Summary: "top-K of a design-space grid by adaptive search (lower-bound pruning, refinement, successive halving)",
			Fields:  []string{"grid", "top_k", "policy", "search", "shard_index", "shard_count"}, Shardable: true},
	}
}

// ParseErrorCode converts a stable wire label ("invalid-config",
// "unknown-node", "infeasible", "canceled", "transport") to an
// ErrorCode.
func ParseErrorCode(name string) (ErrorCode, error) {
	switch name {
	case "invalid-config":
		return ErrInvalidConfig, nil
	case "unknown-node":
		return ErrUnknownNode, nil
	case "infeasible":
		return ErrInfeasible, nil
	case "canceled":
		return ErrCanceled, nil
	case "transport":
		return ErrTransport, nil
	default:
		return 0, fmt.Errorf("actuary: unknown error code %q", name)
	}
}

// MarshalText implements encoding.TextMarshaler with the labels
// ParseErrorCode accepts.
func (c ErrorCode) MarshalText() ([]byte, error) {
	switch c {
	case ErrInvalidConfig, ErrUnknownNode, ErrInfeasible, ErrCanceled, ErrTransport:
		return []byte(c.String()), nil
	default:
		return nil, fmt.Errorf("actuary: cannot marshal unknown error code %d", int(c))
	}
}

// UnmarshalText implements encoding.TextUnmarshaler via
// ParseErrorCode.
func (c *ErrorCode) UnmarshalText(text []byte) error {
	parsed, err := ParseErrorCode(string(text))
	if err != nil {
		return err
	}
	*c = parsed
	return nil
}

// wireError is the canonical JSON shape of a structured error. The
// question travels as its wire name; errors without one (client-side
// transport failures) omit the field.
type wireError struct {
	Code     ErrorCode `json:"code"`
	Index    int       `json:"index,omitempty"`
	ID       string    `json:"id,omitempty"`
	Question string    `json:"question,omitempty"`
	Message  string    `json:"message,omitempty"`
}

// MarshalJSON implements json.Marshaler. The underlying cause crosses
// the wire as its message; the classified code, batch location and
// question survive structurally.
func (e *Error) MarshalJSON() ([]byte, error) {
	w := wireError{Code: e.Code, Index: e.Index, ID: e.ID}
	if text, err := e.Question.MarshalText(); err == nil {
		w.Question = string(text)
	}
	if e.Err != nil {
		w.Message = e.Err.Error()
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler, rejecting unknown fields.
// The decoded cause is an opaque error carrying the sender's message;
// route on Code rather than errors.Is across a process boundary.
func (e *Error) UnmarshalJSON(data []byte) error {
	var w wireError
	if err := wirejson.UnmarshalStrict(data, &w); err != nil {
		return fmt.Errorf("actuary: decoding error: %w", err)
	}
	*e = Error{Code: w.Code, Index: w.Index, ID: w.ID}
	if w.Question != "" {
		if err := e.Question.UnmarshalText([]byte(w.Question)); err != nil {
			return err
		}
	} else {
		// No question on the wire means the error never had one (a
		// transport failure); keep that explicit rather than letting
		// the zero value masquerade as total-cost.
		e.Question = -1
	}
	if w.Message != "" {
		e.Err = errors.New(w.Message)
	}
	return nil
}

// wireRequest is the canonical JSON shape of a Request. Only the
// fields the question consumes appear on the wire; zero-valued
// defaults are omitted and reconstructed on decode. The question is a
// string here (not a Question) so decoding can distinguish an absent
// field from total-cost and reject it — defaulting would silently
// answer the wrong question.
type wireRequest struct {
	ID            string             `json:"id,omitempty"`
	Question      string             `json:"question"`
	System        *System            `json:"system,omitempty"`
	Policy        AmortizationPolicy `json:"policy,omitempty"`
	Quantity      float64            `json:"quantity,omitempty"`
	Incumbent     *System            `json:"incumbent,omitempty"`
	Challenger    *System            `json:"challenger,omitempty"`
	Node          string             `json:"node,omitempty"`
	ModuleAreaMM2 float64            `json:"module_area_mm2,omitempty"`
	Scheme        Scheme             `json:"scheme,omitempty"`
	D2D           json.RawMessage    `json:"d2d,omitempty"`
	MaxK          int                `json:"max_k,omitempty"`
	K             int                `json:"k,omitempty"`
	LoMM2         float64            `json:"lo_mm2,omitempty"`
	HiMM2         float64            `json:"hi_mm2,omitempty"`
	Grid          *SweepGrid         `json:"grid,omitempty"`
	TopK          int                `json:"top_k,omitempty"`
	ShardIndex    int                `json:"shard_index,omitempty"`
	ShardCount    int                `json:"shard_count,omitempty"`
	Search        *SearchSpec        `json:"search,omitempty"`
}

// systemOrNil returns &s when s carries any data, nil for the zero
// System, so unused system slots stay off the wire.
func systemOrNil(s System) *System {
	if reflect.DeepEqual(s, System{}) {
		return nil
	}
	return &s
}

// MarshalJSON implements json.Marshaler with snake_case field names.
func (r Request) MarshalJSON() ([]byte, error) {
	question, err := r.Question.MarshalText()
	if err != nil {
		return nil, err
	}
	w := wireRequest{
		ID: r.ID, Question: string(question),
		System: systemOrNil(r.System), Policy: r.Policy, Quantity: r.Quantity,
		Incumbent: systemOrNil(r.Incumbent), Challenger: systemOrNil(r.Challenger),
		Node: r.Node, ModuleAreaMM2: r.ModuleAreaMM2, Scheme: r.Scheme,
		MaxK: r.MaxK, K: r.K, LoMM2: r.LoMM2, HiMM2: r.HiMM2,
		Grid: r.Grid, TopK: r.TopK,
		ShardIndex: r.ShardIndex, ShardCount: r.ShardCount,
		Search: r.Search,
	}
	if r.D2D != nil {
		d2d, err := dtod.MarshalOverhead(r.D2D)
		if err != nil {
			return nil, fmt.Errorf("actuary: request %q: %w", r.ID, err)
		}
		w.D2D = d2d
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler, rejecting unknown fields
// and unknown question names.
func (r *Request) UnmarshalJSON(data []byte) error {
	var w wireRequest
	if err := wirejson.UnmarshalStrict(data, &w); err != nil {
		return fmt.Errorf("actuary: decoding request: %w", err)
	}
	if w.Question == "" {
		return fmt.Errorf("actuary: decoding request %q: missing question", w.ID)
	}
	question, err := ParseQuestion(w.Question)
	if err != nil {
		return fmt.Errorf("actuary: decoding request %q: %w", w.ID, err)
	}
	req := Request{
		ID: w.ID, Question: question,
		Policy: w.Policy, Quantity: w.Quantity,
		Node: w.Node, ModuleAreaMM2: w.ModuleAreaMM2, Scheme: w.Scheme,
		MaxK: w.MaxK, K: w.K, LoMM2: w.LoMM2, HiMM2: w.HiMM2,
		Grid: w.Grid, TopK: w.TopK,
		ShardIndex: w.ShardIndex, ShardCount: w.ShardCount,
		Search: w.Search,
	}
	if w.System != nil {
		req.System = *w.System
	}
	if w.Incumbent != nil {
		req.Incumbent = *w.Incumbent
	}
	if w.Challenger != nil {
		req.Challenger = *w.Challenger
	}
	if len(w.D2D) > 0 {
		d2d, err := dtod.UnmarshalOverhead(w.D2D)
		if err != nil {
			return fmt.Errorf("actuary: decoding request %q: %w", w.ID, err)
		}
		req.D2D = d2d
	}
	*r = req
	return nil
}

// wireSweepPoint is the canonical JSON shape of an evaluated sweep
// point.
type wireSweepPoint struct {
	ID       string    `json:"id"`
	Node     string    `json:"node"`
	Scheme   Scheme    `json:"scheme"`
	AreaMM2  float64   `json:"area_mm2"`
	K        int       `json:"k"`
	Quantity float64   `json:"quantity"`
	Total    TotalCost `json:"total"`
}

// MarshalJSON implements json.Marshaler with snake_case field names.
func (p SweepPoint) MarshalJSON() ([]byte, error) {
	return json.Marshal(wireSweepPoint(p))
}

// UnmarshalJSON implements json.Unmarshaler, rejecting unknown fields.
func (p *SweepPoint) UnmarshalJSON(data []byte) error {
	var w wireSweepPoint
	if err := wirejson.UnmarshalStrict(data, &w); err != nil {
		return fmt.Errorf("actuary: decoding sweep point: %w", err)
	}
	*p = SweepPoint(w)
	return nil
}

// wireSweepBest is the canonical JSON shape of a sweep-best answer.
// The first per-point failure crosses the wire in the structured error
// form, so its classified code survives the transport — a shard
// answered by a remote daemon still explains a typo'd node as
// unknown-node when the merged sweep comes up empty (the raw Go error
// chain itself cannot cross a process boundary).
type wireSweepBest struct {
	Top        []SweepPoint `json:"top"`
	Pareto     []SweepPoint `json:"pareto"`
	Summary    SweepSummary `json:"summary"`
	Pruned     int          `json:"pruned,omitempty"`
	Deduped    int          `json:"deduped,omitempty"`
	Infeasible int          `json:"infeasible,omitempty"`
	// FirstFailure is encoded as a structured Error; decode also
	// accepts the bare message string earlier v1 encoders emitted, so
	// a newer reader still understands an older daemon (a legacy
	// string decodes to the same opaque error it always did, without
	// a code).
	FirstFailure json.RawMessage `json:"first_failure,omitempty"`
	// FirstFailureCandidate positions the failure in the grid's
	// odometer order, so merged shards report the globally first one.
	FirstFailureCandidate int `json:"first_failure_candidate,omitempty"`
}

// wireFirstFailure lifts a per-point sweep failure into the structured
// wire form: a *Error passes through, anything else is classified in
// place. The location fields carry no information inside a SweepBest.
func wireFirstFailure(err error) *Error {
	if err == nil {
		return nil
	}
	if ae, ok := AsError(err); ok {
		return ae
	}
	return &Error{Code: classify(err), Index: -1, Question: -1, Err: err}
}

// MarshalJSON implements json.Marshaler with snake_case field names.
func (b SweepBest) MarshalJSON() ([]byte, error) {
	w := wireSweepBest{Top: b.Top, Pareto: b.Pareto, Summary: b.Summary,
		Pruned: b.Pruned, Deduped: b.Deduped, Infeasible: b.Infeasible,
		FirstFailureCandidate: b.FirstFailureCandidate}
	if fe := wireFirstFailure(b.FirstFailure); fe != nil {
		data, err := json.Marshal(fe)
		if err != nil {
			return nil, fmt.Errorf("actuary: encoding sweep-best failure: %w", err)
		}
		w.FirstFailure = data
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler, rejecting unknown fields.
func (b *SweepBest) UnmarshalJSON(data []byte) error {
	var w wireSweepBest
	if err := wirejson.UnmarshalStrict(data, &w); err != nil {
		return fmt.Errorf("actuary: decoding sweep-best: %w", err)
	}
	*b = SweepBest{Top: w.Top, Pareto: w.Pareto, Summary: w.Summary,
		Pruned: w.Pruned, Deduped: w.Deduped, Infeasible: w.Infeasible,
		FirstFailureCandidate: w.FirstFailureCandidate}
	if len(w.FirstFailure) > 0 {
		var legacy string
		if err := json.Unmarshal(w.FirstFailure, &legacy); err == nil {
			b.FirstFailure = errors.New(legacy)
			return nil
		}
		fe := new(Error)
		if err := fe.UnmarshalJSON(w.FirstFailure); err != nil {
			return fmt.Errorf("actuary: decoding sweep-best failure: %w", err)
		}
		b.FirstFailure = fe
	}
	return nil
}

// wireSearchBest is the canonical JSON shape of a search-best answer.
type wireSearchBest struct {
	Top   []SweepPoint `json:"top"`
	Stats SearchStats  `json:"stats"`
}

// MarshalJSON implements json.Marshaler with snake_case field names.
func (b SearchBest) MarshalJSON() ([]byte, error) {
	return json.Marshal(wireSearchBest{Top: b.Top, Stats: b.Stats})
}

// UnmarshalJSON implements json.Unmarshaler, rejecting unknown fields.
func (b *SearchBest) UnmarshalJSON(data []byte) error {
	var w wireSearchBest
	if err := wirejson.UnmarshalStrict(data, &w); err != nil {
		return fmt.Errorf("actuary: decoding search-best: %w", err)
	}
	*b = SearchBest{Top: w.Top, Stats: w.Stats}
	return nil
}

// wireResult is the canonical JSON shape of a Result: the request
// echo, exactly one payload field on success, or a structured error.
type wireResult struct {
	Index      int              `json:"index"`
	ID         string           `json:"id,omitempty"`
	Question   Question         `json:"question"`
	TotalCost  *TotalCost       `json:"total_cost,omitempty"`
	RE         *REBreakdown     `json:"re,omitempty"`
	Wafers     *WaferDemand     `json:"wafers,omitempty"`
	Quantity   float64          `json:"quantity,omitempty"`
	AreaMM2    float64          `json:"area_mm2,omitempty"`
	Points     []PartitionPoint `json:"points,omitempty"`
	Best       int              `json:"best,omitempty"`
	SweepBest  *SweepBest       `json:"sweep_best,omitempty"`
	SearchBest *SearchBest      `json:"search_best,omitempty"`
	Error      *Error           `json:"error,omitempty"`
}

// WireError lifts an arbitrary result error into the structured form
// the wire carries: a *Error passes through, anything else is
// classified and wrapped in place.
func WireError(r Result) *Error {
	if r.Err == nil {
		return nil
	}
	if ae, ok := AsError(r.Err); ok {
		return ae
	}
	return &Error{Code: classify(r.Err), Index: r.Index, ID: r.ID,
		Question: r.Question, Err: r.Err}
}

// MarshalJSON implements json.Marshaler with snake_case field names.
func (r Result) MarshalJSON() ([]byte, error) {
	return json.Marshal(wireResult{
		Index: r.Index, ID: r.ID, Question: r.Question,
		TotalCost: r.TotalCost, RE: r.RE, Wafers: r.Wafers,
		Quantity: r.Quantity, AreaMM2: r.AreaMM2,
		Points: r.Points, Best: r.Best, SweepBest: r.SweepBest,
		SearchBest: r.SearchBest,
		Error:      WireError(r),
	})
}

// UnmarshalJSON implements json.Unmarshaler, rejecting unknown fields.
func (r *Result) UnmarshalJSON(data []byte) error {
	var w wireResult
	if err := wirejson.UnmarshalStrict(data, &w); err != nil {
		return fmt.Errorf("actuary: decoding result: %w", err)
	}
	res := Result{
		Index: w.Index, ID: w.ID, Question: w.Question,
		TotalCost: w.TotalCost, RE: w.RE, Wafers: w.Wafers,
		Quantity: w.Quantity, AreaMM2: w.AreaMM2,
		Points: w.Points, Best: w.Best, SweepBest: w.SweepBest,
		SearchBest: w.SearchBest,
	}
	if w.Error != nil {
		res.Err = w.Error
	}
	*r = res
	return nil
}

// Checkpoint wire forms. A checkpoint is the versioned canonical JSON
// snapshot of a partially drained sweep: enough state to continue the
// walk on another process — or another host — and still produce output
// byte-identical to an uninterrupted run. Three shapes exist, one per
// pipeline layer: SweepCheckpoint (a single sweep-best walk),
// StreamCheckpoint (a scenario result stream reduced through the
// online aggregators), and CoordinatorCheckpoint (per-shard progress
// of a distributed run). All three carry CheckpointVersion and a
// workload fingerprint; decode rejects unknown fields, and a version
// or fingerprint mismatch fails loudly instead of resuming the wrong
// sweep.

// CheckpointVersion is the format version stamped on every encoded
// checkpoint. Decoding any other version is an error: a checkpoint is
// a promise of byte-identical resumption, which a best-effort read of
// an unknown format could not keep.
const CheckpointVersion = 1

// checkpointVersionError renders the one error message all three
// checkpoint decoders share.
func checkpointVersionError(kind string, got int) error {
	return fmt.Errorf("actuary: %s checkpoint version %d (this build reads version %d)",
		kind, got, CheckpointVersion)
}

// fingerprintHex hashes a canonical JSON payload into the fingerprint
// string stored in checkpoints.
func fingerprintHex(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// SweepFingerprint returns the stable identity of a sweep-best
// workload: a hash over the canonical JSON of the grid, the
// (normalized) top-K bound, the amortization policy and the shard
// spec. Two requests with equal fingerprints walk the same candidates
// under the same ranking, so a checkpoint from one may seed the other;
// request IDs deliberately stay out of the hash — relabelling a run
// must not orphan its checkpoint.
func SweepFingerprint(req Request) (string, error) {
	if req.Grid == nil {
		return "", fmt.Errorf("actuary: fingerprinting a sweep-best request needs a Grid")
	}
	k := req.TopK
	if k < 1 {
		k = 1
	}
	payload := struct {
		Grid       *SweepGrid         `json:"grid"`
		TopK       int                `json:"top_k"`
		Policy     AmortizationPolicy `json:"policy"`
		ShardIndex int                `json:"shard_index,omitempty"`
		ShardCount int                `json:"shard_count,omitempty"`
	}{req.Grid, k, req.Policy, req.ShardIndex, req.ShardCount}
	data, err := json.Marshal(payload)
	if err != nil {
		return "", fmt.Errorf("actuary: fingerprinting sweep grid %q: %w", req.Grid.Name, err)
	}
	return fingerprintHex(data), nil
}

// wireSweepCheckpoint is the canonical JSON shape of a SweepCheckpoint.
// The first failure crosses in the structured error form, exactly like
// a SweepBest payload.
type wireSweepCheckpoint struct {
	Version               int             `json:"version"`
	Fingerprint           string          `json:"fingerprint"`
	Cursor                SweepCursor     `json:"cursor"`
	Top                   []SweepPoint    `json:"top,omitempty"`
	Pareto                []SweepPoint    `json:"pareto,omitempty"`
	Summary               SweepSummary    `json:"summary"`
	Infeasible            int             `json:"infeasible,omitempty"`
	FirstFailure          json.RawMessage `json:"first_failure,omitempty"`
	FirstFailureCandidate int             `json:"first_failure_candidate,omitempty"`
}

// MarshalJSON implements json.Marshaler with snake_case field names.
func (c SweepCheckpoint) MarshalJSON() ([]byte, error) {
	w := wireSweepCheckpoint{Version: CheckpointVersion, Fingerprint: c.Fingerprint,
		Cursor: c.Cursor, Top: c.Top, Pareto: c.Pareto, Summary: c.Summary,
		Infeasible: c.Infeasible, FirstFailureCandidate: c.FirstFailureCandidate}
	if fe := wireFirstFailure(c.FirstFailure); fe != nil {
		data, err := json.Marshal(fe)
		if err != nil {
			return nil, fmt.Errorf("actuary: encoding checkpoint failure: %w", err)
		}
		w.FirstFailure = data
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler, rejecting unknown fields
// and any version this build does not read.
func (c *SweepCheckpoint) UnmarshalJSON(data []byte) error {
	var w wireSweepCheckpoint
	if err := wirejson.UnmarshalStrict(data, &w); err != nil {
		return fmt.Errorf("actuary: decoding sweep checkpoint: %w", err)
	}
	if w.Version != CheckpointVersion {
		return checkpointVersionError("sweep", w.Version)
	}
	*c = SweepCheckpoint{Fingerprint: w.Fingerprint, Cursor: w.Cursor,
		Top: w.Top, Pareto: w.Pareto, Summary: w.Summary,
		Infeasible: w.Infeasible, FirstFailureCandidate: w.FirstFailureCandidate}
	if len(w.FirstFailure) > 0 {
		fe := new(Error)
		if err := fe.UnmarshalJSON(w.FirstFailure); err != nil {
			return fmt.Errorf("actuary: decoding checkpoint failure: %w", err)
		}
		c.FirstFailure = fe
	}
	return nil
}

// SearchFingerprint returns the stable identity of a search-best
// workload: a hash over the canonical JSON of the grid, the
// (normalized) top-K bound, the amortization policy, the shard spec
// and the (resolved) search spec. The spec participates because two
// searches of the same grid under different strategies walk different
// candidates — a checkpoint from one must not seed the other. Request
// IDs stay out of the hash, as in SweepFingerprint.
func SearchFingerprint(req Request) (string, error) {
	if req.Grid == nil {
		return "", fmt.Errorf("actuary: fingerprinting a search-best request needs a Grid")
	}
	k := req.TopK
	if k < 1 {
		k = 1
	}
	spec := resolveSearchSpec(req)
	payload := struct {
		Grid       *SweepGrid         `json:"grid"`
		TopK       int                `json:"top_k"`
		Policy     AmortizationPolicy `json:"policy"`
		ShardIndex int                `json:"shard_index,omitempty"`
		ShardCount int                `json:"shard_count,omitempty"`
		Search     SearchSpec         `json:"search"`
	}{req.Grid, k, req.Policy, req.ShardIndex, req.ShardCount, spec}
	data, err := json.Marshal(payload)
	if err != nil {
		return "", fmt.Errorf("actuary: fingerprinting search grid %q: %w", req.Grid.Name, err)
	}
	return fingerprintHex(data), nil
}

// wireSearchCheckpoint is the canonical JSON shape of a
// SearchCheckpoint. The planner crosses as the search package's own
// JSON form; the first failure crosses in the structured error form,
// exactly like a SweepBest payload.
type wireSearchCheckpoint struct {
	Version               int               `json:"version"`
	Fingerprint           string            `json:"fingerprint"`
	Planner               *search.Planner   `json:"planner"`
	Cursor                SweepCursor       `json:"cursor"`
	Totals                SweepStats        `json:"totals"`
	Top                   []SweepPoint      `json:"top,omitempty"`
	Pareto                []SweepPoint      `json:"pareto,omitempty"`
	Infeasible            int               `json:"infeasible,omitempty"`
	FirstFailure          json.RawMessage   `json:"first_failure,omitempty"`
	FirstFailureCandidate int               `json:"first_failure_candidate,omitempty"`
	SlabBest              []wireSlabScore   `json:"slab_best,omitempty"`
	Trajectory            []SearchIncumbent `json:"trajectory,omitempty"`
}

// wireSlabScore is the canonical JSON shape of a SearchSlabScore.
type wireSlabScore struct {
	Slab int     `json:"slab"`
	Cost float64 `json:"cost"`
}

// MarshalJSON implements json.Marshaler with snake_case field names.
func (c SearchCheckpoint) MarshalJSON() ([]byte, error) {
	w := wireSearchCheckpoint{Version: CheckpointVersion, Fingerprint: c.Fingerprint,
		Planner: c.Planner, Cursor: c.Cursor, Totals: c.Totals,
		Top: c.Top, Pareto: c.Pareto, Infeasible: c.Infeasible,
		FirstFailureCandidate: c.FirstFailureCandidate, Trajectory: c.Trajectory}
	for _, sb := range c.SlabBest {
		w.SlabBest = append(w.SlabBest, wireSlabScore(sb))
	}
	if fe := wireFirstFailure(c.FirstFailure); fe != nil {
		data, err := json.Marshal(fe)
		if err != nil {
			return nil, fmt.Errorf("actuary: encoding search checkpoint failure: %w", err)
		}
		w.FirstFailure = data
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler, rejecting unknown fields,
// unknown versions, and planners no search could have serialized.
func (c *SearchCheckpoint) UnmarshalJSON(data []byte) error {
	var w wireSearchCheckpoint
	if err := wirejson.UnmarshalStrict(data, &w); err != nil {
		return fmt.Errorf("actuary: decoding search checkpoint: %w", err)
	}
	if w.Version != CheckpointVersion {
		return checkpointVersionError("search", w.Version)
	}
	if w.Planner == nil {
		return fmt.Errorf("actuary: search checkpoint carries no planner")
	}
	if err := w.Planner.Validate(); err != nil {
		return fmt.Errorf("actuary: decoding search checkpoint: %w", err)
	}
	out := SearchCheckpoint{Fingerprint: w.Fingerprint, Planner: w.Planner,
		Cursor: w.Cursor, Totals: w.Totals, Top: w.Top, Pareto: w.Pareto,
		Infeasible: w.Infeasible, FirstFailureCandidate: w.FirstFailureCandidate,
		Trajectory: w.Trajectory}
	for _, sb := range w.SlabBest {
		out.SlabBest = append(out.SlabBest, SearchSlabScore(sb))
	}
	if len(w.FirstFailure) > 0 {
		fe := new(Error)
		if err := fe.UnmarshalJSON(w.FirstFailure); err != nil {
			return fmt.Errorf("actuary: decoding search checkpoint failure: %w", err)
		}
		out.FirstFailure = fe
	}
	*c = out
	return nil
}

// wireCostTopK is the canonical JSON shape of a CostTopK snapshot:
// the bound, the observation count, and the retained results cheapest
// first.
type wireCostTopK struct {
	K       int      `json:"k"`
	Seen    int      `json:"seen"`
	Results []Result `json:"results,omitempty"`
}

// MarshalJSON implements json.Marshaler with snake_case field names.
func (c *CostTopK) MarshalJSON() ([]byte, error) {
	st := c.top.State()
	return json.Marshal(wireCostTopK{K: st.K, Seen: st.Seen, Results: st.Items})
}

// UnmarshalJSON implements json.Unmarshaler, rejecting unknown fields
// and states a live selector could not have produced.
func (c *CostTopK) UnmarshalJSON(data []byte) error {
	var w wireCostTopK
	if err := wirejson.UnmarshalStrict(data, &w); err != nil {
		return fmt.Errorf("actuary: decoding top-k state: %w", err)
	}
	for _, r := range w.Results {
		if r.Err != nil || r.TotalCost == nil {
			return fmt.Errorf("actuary: top-k state retains result %q without a total cost", r.ID)
		}
	}
	rebuilt := NewCostTopK(w.K)
	if err := rebuilt.top.SetState(sweep.TopKState[Result]{K: w.K, Seen: w.Seen, Items: w.Results}); err != nil {
		return fmt.Errorf("actuary: %w", err)
	}
	*c = *rebuilt
	return nil
}

// wireCostPareto is the canonical JSON shape of a CostPareto snapshot.
type wireCostPareto struct {
	Seen  int      `json:"seen"`
	Front []Result `json:"front,omitempty"`
}

// MarshalJSON implements json.Marshaler with snake_case field names.
func (c *CostPareto) MarshalJSON() ([]byte, error) {
	st := c.front.State()
	return json.Marshal(wireCostPareto{Seen: st.Seen, Front: st.Front})
}

// UnmarshalJSON implements json.Unmarshaler, rejecting unknown fields
// and states a live front could not have produced.
func (c *CostPareto) UnmarshalJSON(data []byte) error {
	var w wireCostPareto
	if err := wirejson.UnmarshalStrict(data, &w); err != nil {
		return fmt.Errorf("actuary: decoding pareto state: %w", err)
	}
	for _, r := range w.Front {
		if r.Err != nil || r.TotalCost == nil {
			return fmt.Errorf("actuary: pareto state fronts result %q without a total cost", r.ID)
		}
	}
	rebuilt := NewCostPareto()
	if err := rebuilt.front.SetState(sweep.ParetoState[Result]{Seen: w.Seen, Front: w.Front}); err != nil {
		return fmt.Errorf("actuary: %w", err)
	}
	*c = *rebuilt
	return nil
}

// wireStreamStats is the canonical JSON shape of StreamStats.
type wireStreamStats struct {
	OK      int          `json:"ok"`
	Failed  int          `json:"failed,omitempty"`
	Skipped int          `json:"skipped,omitempty"`
	Cost    SweepSummary `json:"cost"`
}

// MarshalJSON implements json.Marshaler with snake_case field names.
func (s StreamStats) MarshalJSON() ([]byte, error) {
	return json.Marshal(wireStreamStats{OK: s.OK, Failed: s.Failed, Skipped: s.Skipped, Cost: s.Cost})
}

// UnmarshalJSON implements json.Unmarshaler, rejecting unknown fields.
func (s *StreamStats) UnmarshalJSON(data []byte) error {
	var w wireStreamStats
	if err := wirejson.UnmarshalStrict(data, &w); err != nil {
		return fmt.Errorf("actuary: decoding stream stats: %w", err)
	}
	*s = StreamStats{OK: w.OK, Failed: w.Failed, Skipped: w.Skipped, Cost: w.Cost}
	return nil
}

// wireStreamCheckpoint is the canonical JSON shape of a
// StreamCheckpoint. The aggregators are optional — a consumer that
// only tracks, say, stats persists only what it uses.
type wireStreamCheckpoint struct {
	Version     int          `json:"version"`
	Fingerprint string       `json:"fingerprint"`
	Next        int          `json:"next"`
	TopK        *CostTopK    `json:"top_k,omitempty"`
	Pareto      *CostPareto  `json:"pareto,omitempty"`
	Stats       *StreamStats `json:"stats,omitempty"`
}

// MarshalJSON implements json.Marshaler with snake_case field names.
func (c StreamCheckpoint) MarshalJSON() ([]byte, error) {
	return json.Marshal(wireStreamCheckpoint{Version: CheckpointVersion,
		Fingerprint: c.Fingerprint, Next: c.Next,
		TopK: c.TopK, Pareto: c.Pareto, Stats: c.Stats})
}

// UnmarshalJSON implements json.Unmarshaler, rejecting unknown fields
// and any version this build does not read.
func (c *StreamCheckpoint) UnmarshalJSON(data []byte) error {
	var w wireStreamCheckpoint
	if err := wirejson.UnmarshalStrict(data, &w); err != nil {
		return fmt.Errorf("actuary: decoding stream checkpoint: %w", err)
	}
	if w.Version != CheckpointVersion {
		return checkpointVersionError("stream", w.Version)
	}
	if w.Next < 0 {
		return fmt.Errorf("actuary: stream checkpoint resumes at negative index %d", w.Next)
	}
	*c = StreamCheckpoint{Fingerprint: w.Fingerprint, Next: w.Next,
		TopK: w.TopK, Pareto: w.Pareto, Stats: w.Stats}
	return nil
}

// wireFleetStreamCheckpoint is the canonical JSON shape of a
// FleetStreamCheckpoint.
type wireFleetStreamCheckpoint struct {
	Version int                `json:"version"`
	Merged  *StreamCheckpoint  `json:"merged"`
	Shards  int                `json:"shards"`
	Cursors []StreamCheckpoint `json:"cursors"`
}

// MarshalJSON implements json.Marshaler with snake_case field names.
func (c FleetStreamCheckpoint) MarshalJSON() ([]byte, error) {
	return json.Marshal(wireFleetStreamCheckpoint{Version: CheckpointVersion,
		Merged: c.Merged, Shards: c.Shards, Cursors: c.Cursors})
}

// UnmarshalJSON implements json.Unmarshaler, rejecting unknown
// fields, unknown versions, and cursor sets no coordinator could have
// recorded (see Validate).
func (c *FleetStreamCheckpoint) UnmarshalJSON(data []byte) error {
	var w wireFleetStreamCheckpoint
	if err := wirejson.UnmarshalStrict(data, &w); err != nil {
		return fmt.Errorf("actuary: decoding fleet stream checkpoint: %w", err)
	}
	if w.Version != CheckpointVersion {
		return checkpointVersionError("fleet stream", w.Version)
	}
	out := FleetStreamCheckpoint{Merged: w.Merged, Shards: w.Shards, Cursors: w.Cursors}
	if err := out.Validate(); err != nil {
		return err
	}
	*c = out
	return nil
}

// wireCoordinatorCheckpoint is the canonical JSON shape of a
// CoordinatorCheckpoint.
type wireCoordinatorCheckpoint struct {
	Version     int               `json:"version"`
	Fingerprint string            `json:"fingerprint"`
	Shards      int               `json:"shards"`
	Completed   []wireShardResult `json:"completed,omitempty"`
}

// wireShardResult pairs a drained shard's index with its answer.
type wireShardResult struct {
	Shard int        `json:"shard"`
	Best  *SweepBest `json:"best"`
}

// MarshalJSON implements json.Marshaler with snake_case field names.
func (c CoordinatorCheckpoint) MarshalJSON() ([]byte, error) {
	w := wireCoordinatorCheckpoint{Version: CheckpointVersion,
		Fingerprint: c.Fingerprint, Shards: c.Shards}
	for _, sr := range c.Completed {
		w.Completed = append(w.Completed, wireShardResult(sr))
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler, rejecting unknown
// fields, unknown versions, and shard sets no coordinator could have
// recorded (out-of-range indexes, duplicates, answers missing).
func (c *CoordinatorCheckpoint) UnmarshalJSON(data []byte) error {
	var w wireCoordinatorCheckpoint
	if err := wirejson.UnmarshalStrict(data, &w); err != nil {
		return fmt.Errorf("actuary: decoding coordinator checkpoint: %w", err)
	}
	if w.Version != CheckpointVersion {
		return checkpointVersionError("coordinator", w.Version)
	}
	out := CoordinatorCheckpoint{Fingerprint: w.Fingerprint, Shards: w.Shards}
	for _, sr := range w.Completed {
		out.Completed = append(out.Completed, ShardResult(sr))
	}
	if err := out.Validate(); err != nil {
		return err
	}
	*c = out
	return nil
}

// ErrorBody is the JSON envelope of a transport-level HTTP failure —
// a malformed body, an oversized payload, a scenario that does not
// compile. Per-request evaluation failures never use it; they travel
// inside Result.error with HTTP 200. Defined here so server and
// client share one shape.
type ErrorBody struct {
	Error ErrorBodyDetail `json:"error"`
}

// ErrorBodyDetail carries the classified code (an ErrorCode string
// form) and the human-readable message.
type ErrorBodyDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// DecodeRequests strictly decodes a JSON array of wire requests, the
// body of POST /v1/evaluate.
func DecodeRequests(data []byte) ([]Request, error) {
	var reqs []Request
	if err := wirejson.UnmarshalStrict(data, &reqs); err != nil {
		return nil, fmt.Errorf("actuary: decoding request batch: %w", err)
	}
	return reqs, nil
}

// DecodeResults strictly decodes a JSON array of wire results, the
// body of a /v1/evaluate response.
func DecodeResults(data []byte) ([]Result, error) {
	var results []Result
	if err := wirejson.UnmarshalStrict(data, &results); err != nil {
		return nil, fmt.Errorf("actuary: decoding result batch: %w", err)
	}
	return results, nil
}

// MetricsSnapshot is the GET /v1/metricz payload: the session's
// back-pressure counters, current worker width and KGD cache counters
// as one canonical-JSON document — the programmatic face of the
// Prometheus text GET /metrics serves, and the preferred probe of
// fleet.Monitor.
type MetricsSnapshot struct {
	// Session is the back-pressure snapshot (Session.Metrics).
	Session SessionMetrics
	// Workers is the pool's current target width (Session.Workers) —
	// live, so an elastic daemon's resizes are observable.
	Workers int
	// Cache is the shared KGD cache's counters (Session.CacheStats).
	Cache KGDCacheStats
}

// wireMetricsSnapshot is the canonical JSON shape of a
// MetricsSnapshot: snake_case, durations as integer nanoseconds,
// questions by name.
type wireMetricsSnapshot struct {
	Workers           int                   `json:"workers"`
	StreamsStarted    int64                 `json:"streams_started"`
	StreamsCompleted  int64                 `json:"streams_completed"`
	QueueDepth        int64                 `json:"queue_depth"`
	QueueDepthMax     int64                 `json:"queue_depth_max"`
	QueueDepthSamples int64                 `json:"queue_depth_samples"`
	QueueDepthSum     int64                 `json:"queue_depth_sum"`
	InFlight          int64                 `json:"in_flight"`
	InFlightMax       int64                 `json:"in_flight_max"`
	WorkerBusyNS      int64                 `json:"worker_busy_ns"`
	WorkerTimeNS      int64                 `json:"worker_time_ns"`
	PerQuestion       []wireQuestionMetrics `json:"per_question,omitempty"`
	CacheHits         int64                 `json:"cache_hits"`
	CacheMisses       int64                 `json:"cache_misses"`
	CacheEntries      int                   `json:"cache_entries"`
}

// wireQuestionMetrics is the canonical JSON shape of one question's
// latency profile.
type wireQuestionMetrics struct {
	Question Question `json:"question"`
	Count    int64    `json:"count"`
	Failures int64    `json:"failures,omitempty"`
	TotalNS  int64    `json:"total_ns"`
	MaxNS    int64    `json:"max_ns"`
}

// MarshalJSON implements json.Marshaler with snake_case field names.
func (m MetricsSnapshot) MarshalJSON() ([]byte, error) {
	w := wireMetricsSnapshot{
		Workers:           m.Workers,
		StreamsStarted:    m.Session.StreamsStarted,
		StreamsCompleted:  m.Session.StreamsCompleted,
		QueueDepth:        m.Session.QueueDepth,
		QueueDepthMax:     m.Session.QueueDepthMax,
		QueueDepthSamples: m.Session.QueueDepthSamples,
		QueueDepthSum:     m.Session.QueueDepthSum,
		InFlight:          m.Session.InFlight,
		InFlightMax:       m.Session.InFlightMax,
		WorkerBusyNS:      int64(m.Session.WorkerBusy),
		WorkerTimeNS:      int64(m.Session.WorkerTime),
		CacheHits:         m.Cache.Hits,
		CacheMisses:       m.Cache.Misses,
		CacheEntries:      m.Cache.Entries,
	}
	for _, q := range m.Session.PerQuestion {
		w.PerQuestion = append(w.PerQuestion, wireQuestionMetrics{
			Question: q.Question, Count: q.Count, Failures: q.Failures,
			TotalNS: int64(q.TotalLatency), MaxNS: int64(q.MaxLatency)})
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler, rejecting unknown fields
// and counters no session could have recorded (negative values) —
// schema drift or a corrupted probe response surfaces as an error,
// not as a nonsense health score.
func (m *MetricsSnapshot) UnmarshalJSON(data []byte) error {
	var w wireMetricsSnapshot
	if err := wirejson.UnmarshalStrict(data, &w); err != nil {
		return fmt.Errorf("actuary: decoding metrics snapshot: %w", err)
	}
	for _, v := range []int64{int64(w.Workers), w.StreamsStarted, w.StreamsCompleted,
		w.QueueDepth, w.QueueDepthMax, w.QueueDepthSamples, w.QueueDepthSum,
		w.InFlight, w.InFlightMax, w.WorkerBusyNS, w.WorkerTimeNS,
		w.CacheHits, w.CacheMisses, int64(w.CacheEntries)} {
		if v < 0 {
			return fmt.Errorf("actuary: metrics snapshot carries a negative counter")
		}
	}
	out := MetricsSnapshot{
		Workers: w.Workers,
		Session: SessionMetrics{
			StreamsStarted:    w.StreamsStarted,
			StreamsCompleted:  w.StreamsCompleted,
			QueueDepth:        w.QueueDepth,
			QueueDepthMax:     w.QueueDepthMax,
			QueueDepthSamples: w.QueueDepthSamples,
			QueueDepthSum:     w.QueueDepthSum,
			InFlight:          w.InFlight,
			InFlightMax:       w.InFlightMax,
			WorkerBusy:        time.Duration(w.WorkerBusyNS),
			WorkerTime:        time.Duration(w.WorkerTimeNS),
		},
		Cache: KGDCacheStats{Hits: w.CacheHits, Misses: w.CacheMisses, Entries: w.CacheEntries},
	}
	for _, q := range w.PerQuestion {
		if q.Count < 0 || q.Failures < 0 || q.TotalNS < 0 || q.MaxNS < 0 {
			return fmt.Errorf("actuary: metrics snapshot carries a negative counter")
		}
		out.Session.PerQuestion = append(out.Session.PerQuestion, QuestionMetrics{
			Question: q.Question, Count: q.Count, Failures: q.Failures,
			TotalLatency: time.Duration(q.TotalNS), MaxLatency: time.Duration(q.MaxNS)})
	}
	*m = out
	return nil
}

// MetricsSnapshotNow assembles the live snapshot of a session — the
// document /v1/metricz serves.
func MetricsSnapshotNow(s *Session) MetricsSnapshot {
	return MetricsSnapshot{Session: s.Metrics(), Workers: s.Workers(), Cache: s.CacheStats()}
}
