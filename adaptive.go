package actuary

import (
	"context"
	"fmt"
	"math"

	"chipletactuary/internal/explore"
	"chipletactuary/internal/sweep"
	"chipletactuary/search"
)

// Adaptive search: QuestionSearchBest answers the sweep-best question
// by walking stages planned by the search package instead of the whole
// grid. Each stage rides the machinery exhaustive sweeps already use —
// the same generator (with the stage's plan installed as a Select
// filter and the cost lower bound as a Bound filter), the same
// aggregators and ranking definitions, and for non-exact stages the
// same streaming Evaluate fan-out (slab dispatch, partials cache,
// elastic workers) — so adaptive answers inherit every invariant the
// sweep path has: deterministic candidate numbering, exact per-shard
// accounting, checkpoint/resume byte-identity.

// SearchSpec configures an adaptive search (see the search package for
// the strategy semantics).
type SearchSpec = search.Spec

// SearchRefineSpec configures coarse-to-fine refinement.
type SearchRefineSpec = search.RefineSpec

// SearchHalvingSpec configures successive halving.
type SearchHalvingSpec = search.HalvingSpec

// SearchStats reports what an adaptive search walked and skipped.
type SearchStats = search.Stats

// SearchIncumbent is one step of the incumbent-best trajectory.
type SearchIncumbent = search.Incumbent

// SearchBest is the payload of QuestionSearchBest: the top-K cheapest
// points found plus the accounting that makes the savings checkable.
// Unlike SweepBest it carries no Pareto front or summary — those
// describe *every* feasible point, which an adaptive walk deliberately
// does not visit.
//
// With a pruning-only spec (no refinement, no halving) Top is byte-
// identical to the exhaustive QuestionSweepBest answer: lower-bound
// pruning only skips candidates that provably cannot enter the top-K.
// With refinement or halving, Top is the best of the visited subset —
// within the spec's tolerance on landscapes as smooth as the cost
// model's, but not guaranteed.
type SearchBest struct {
	// Top holds the K cheapest evaluated points, ascending total cost.
	Top []SweepPoint
	// Stats is the walk accounting: evaluated vs grid size, per-cause
	// prune counts, stages, incumbent trajectory.
	Stats SearchStats
}

// searchTrancheSize is how many surviving candidates a non-exact stage
// collects before fanning them out through Evaluate — large enough to
// fill the stream's slab pipeline, small enough to keep checkpoint
// cadence and budget cuts reasonably tight.
const searchTrancheSize = 256

// resolveSearchSpec applies the nil default: pruning only, which keeps
// the answer exhaustive-exact.
func resolveSearchSpec(req Request) SearchSpec {
	if req.Search == nil {
		return SearchSpec{Bound: true}
	}
	return *req.Search
}

// searchBest answers one QuestionSearchBest request.
func (s *Session) searchBest(ctx context.Context, req Request) (*SearchBest, error) {
	return s.searchBestWalk(ctx, req, nil, 0, nil)
}

// SearchBestCheckpointed answers one search-best request exactly like
// Evaluate would, but makes the search durable: roughly every `every`
// evaluated candidates — and at every stage boundary — it snapshots
// the planner, the stage cursor and the aggregator state into a
// SearchCheckpoint and hands it to save. A run killed at any point can
// be restarted with the last saved checkpoint as resume; it evaluates
// no candidate twice and returns a SearchBest byte-identical to an
// uninterrupted run's.
//
// resume nil starts fresh. A resume checkpoint must carry the
// fingerprint of this request (SearchFingerprint); anything else is
// rejected with an error wrapping ErrCheckpointMismatch. A save error
// aborts the search. The returned error taxonomy matches Evaluate's.
func (s *Session) SearchBestCheckpointed(ctx context.Context, req Request, resume *SearchCheckpoint, every int, save func(*SearchCheckpoint) error) (*SearchBest, error) {
	if req.Question == 0 {
		req.Question = QuestionSearchBest
	}
	if req.Question != QuestionSearchBest {
		return nil, fmt.Errorf("actuary: SearchBestCheckpointed wants a search-best request, not %v", req.Question)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return s.searchBestWalk(ctx, req, resume, every, save)
}

// searchGridDims returns the grid's axis lengths in odometer order.
func searchGridDims(g *SweepGrid) [search.NumAxes]int {
	return [search.NumAxes]int{
		len(g.Nodes), len(g.Schemes), len(g.Quantities), len(g.AreasMM2), len(g.Counts),
	}
}

// searchBestWalk is the one implementation behind searchBest and
// SearchBestCheckpointed.
func (s *Session) searchBestWalk(ctx context.Context, req Request, resume *SearchCheckpoint, every int, save func(*SearchCheckpoint) error) (*SearchBest, error) {
	if req.Grid == nil {
		return nil, fmt.Errorf("actuary: search-best request needs a Grid")
	}
	if err := req.Grid.Validate(); err != nil {
		return nil, err
	}
	if err := validShardSpec(req.ShardIndex, req.ShardCount); err != nil {
		return nil, err
	}
	spec := resolveSearchSpec(req)
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if every < 1 {
		every = searchTrancheSize
	}
	tranche := searchTrancheSize
	if save != nil && every < tranche {
		tranche = every
	}
	k := req.TopK
	if k < 1 {
		k = 1
	}
	// Same ranking definitions as the exhaustive path (merge.go): the
	// exactness claim of pruning-only search depends on it.
	top := newSweepTopK(k)
	front := newSweepPareto()
	var totals sweep.Stats
	var firstErr error
	firstCand := 0
	infeasible := 0
	evaluated := 0
	var trajectory []SearchIncumbent
	slabBest := make(map[int]float64)

	fingerprint := ""
	if resume != nil || save != nil {
		var err error
		if fingerprint, err = SearchFingerprint(req); err != nil {
			return nil, err
		}
	}
	var pl *search.Planner
	var resumeCursor *SweepCursor
	if resume != nil {
		if resume.Fingerprint != fingerprint {
			return nil, fmt.Errorf("actuary: %w: checkpoint fingerprint %.12s does not match search grid %q (%.12s)",
				ErrCheckpointMismatch, resume.Fingerprint, req.Grid.Name, fingerprint)
		}
		if resume.Planner == nil {
			return nil, fmt.Errorf("actuary: %w: search checkpoint carries no planner", ErrCheckpointMismatch)
		}
		pl = resume.Planner
		if err := pl.Validate(); err != nil {
			return nil, fmt.Errorf("actuary: %w: %w", ErrCheckpointMismatch, err)
		}
		if dims := searchGridDims(req.Grid); pl.Dims != dims {
			return nil, fmt.Errorf("actuary: %w: planner dims %v do not match grid %q axes %v",
				ErrCheckpointMismatch, pl.Dims, req.Grid.Name, dims)
		}
		if resume.Infeasible < 0 || resume.FirstFailureCandidate < 0 {
			return nil, fmt.Errorf("actuary: %w: checkpoint carries negative counters (%d infeasible, candidate %d)",
				ErrCheckpointMismatch, resume.Infeasible, resume.FirstFailureCandidate)
		}
		totals = resume.Totals
		infeasible = resume.Infeasible
		firstErr = resume.FirstFailure
		firstCand = resume.FirstFailureCandidate
		evaluated = totals.Generated + resume.Cursor.Stats.Generated
		seen := evaluated - infeasible
		if err := top.SetState(sweep.TopKState[SweepPoint]{K: k, Seen: seen, Items: resume.Top}); err != nil {
			return nil, fmt.Errorf("actuary: %w: %w", ErrCheckpointMismatch, err)
		}
		if err := front.SetState(sweep.ParetoState[SweepPoint]{Seen: seen, Front: resume.Pareto}); err != nil {
			return nil, fmt.Errorf("actuary: %w: %w", ErrCheckpointMismatch, err)
		}
		trajectory = resume.Trajectory
		for _, sb := range resume.SlabBest {
			slabBest[sb.Slab] = sb.Cost
		}
		if !pl.Done() {
			cur := resume.Cursor
			resumeCursor = &cur
		}
	} else {
		var err error
		if pl, err = search.New(spec, searchGridDims(req.Grid)); err != nil {
			return nil, err
		}
	}

	budgetLeft := func() int {
		if spec.Budget <= 0 {
			return math.MaxInt
		}
		return spec.Budget - evaluated
	}
	budgetHit := false

	snapshot := func(cur SweepCursor) *SearchCheckpoint {
		slabs := make([]SearchSlabScore, 0, len(slabBest))
		for i := range pl.Slabs {
			if c, ok := slabBest[i]; ok {
				slabs = append(slabs, SearchSlabScore{Slab: i, Cost: c})
			}
		}
		return &SearchCheckpoint{
			Fingerprint:           fingerprint,
			Planner:               pl,
			Cursor:                cur,
			Totals:                totals,
			Top:                   top.Sorted(),
			Pareto:                front.Front(),
			Infeasible:            infeasible,
			FirstFailure:          firstErr,
			FirstFailureCandidate: firstCand,
			SlabBest:              slabs,
			Trajectory:            trajectory,
		}
	}

	// observe folds one evaluated candidate into the aggregators;
	// err is the evaluation failure, nil on success.
	observe := func(cand int, p sweep.Point, tc TotalCost, evalErr error) {
		evaluated++
		if evalErr != nil {
			infeasible++
			if firstErr == nil {
				firstErr = evalErr
				firstCand = cand
			}
			return
		}
		sp := SweepPoint{ID: p.ID, Node: p.Node, Scheme: p.Scheme,
			AreaMM2: p.AreaMM2, K: p.K, Quantity: p.Quantity, Total: tc}
		top.Observe(sp)
		front.Observe(sp)
		if len(pl.Slabs) > 0 {
			if i := pl.SlabIndex(cand); i >= 0 {
				if c, ok := slabBest[i]; !ok || tc.Total() < c {
					slabBest[i] = tc.Total()
				}
			}
		}
	}

	for !pl.Done() {
		stage := pl.Stage()
		gen := req.Grid.Points(sweep.ReticleFit(), sweep.InterposerFit(s.params)).
			AbortWhen(func() bool { return ctx.Err() != nil })
		if req.ShardCount > 0 {
			gen.Shard(req.ShardIndex, req.ShardCount)
		}
		gen.Select(pl.Selector())
		if spec.Bound {
			switch {
			case stage.Running:
				// Exhaustive-exact stage: the threshold tightens as the
				// serial walk feeds the top-K, and skipping is sound at
				// every instant — a lower bound strictly above the K-th
				// best cost excludes the candidate even on ID ties.
				gen.Bound(func(p sweep.Point) bool {
					b, full := top.Bound()
					if !full {
						return true
					}
					lb, ok := s.ev.Cost.REFloor(p.System)
					return !ok || !(lb > b)
				})
			case stage.HasBound:
				// Staged walk: the threshold was frozen when the stage
				// was planned, so pruning is independent of evaluation
				// order within the stage — parallel fan-out and resume
				// see identical BoundPruned counts.
				b := stage.Bound
				gen.Bound(func(p sweep.Point) bool {
					lb, ok := s.ev.Cost.REFloor(p.System)
					return !ok || !(lb > b)
				})
			}
		}
		if resumeCursor != nil {
			if _, err := gen.Restore(*resumeCursor); err != nil {
				return nil, fmt.Errorf("actuary: %w: %w", ErrCheckpointMismatch, err)
			}
			resumeCursor = nil
		}
		lastSaved := gen.Cursor().Candidate
		exhausted := false

		if stage.Running {
			// Serial walk: the running bound threshold makes evaluation
			// order part of the answer's accounting, so this stage
			// evaluates inline, exactly like the exhaustive sweep walk.
			for budgetLeft() > 0 {
				p, ok := gen.Next()
				if !ok {
					exhausted = true
					break
				}
				tc, err := s.ev.Single(p.System, req.Policy)
				observe(gen.LastCandidate(), p, tc, err)
				if cur := gen.Cursor(); save != nil && cur.Candidate-lastSaved >= every {
					if err := save(snapshot(cur)); err != nil {
						return nil, fmt.Errorf("actuary: saving search checkpoint: %w", err)
					}
					lastSaved = cur.Candidate
				}
			}
		} else {
			// Staged walk: generation is serial (cheap), evaluation fans
			// out through the streaming pipeline in candidate order.
			points := make([]sweep.Point, 0, tranche)
			cands := make([]int, 0, tranche)
			reqs := make([]Request, 0, tranche)
			for {
				points, cands = points[:0], cands[:0]
				limit := tranche
				if b := budgetLeft(); b < limit {
					limit = b
				}
				for len(points) < limit {
					p, ok := gen.Next()
					if !ok {
						exhausted = true
						break
					}
					points = append(points, p)
					cands = append(cands, gen.LastCandidate())
				}
				if len(points) == 0 {
					break
				}
				reqs = reqs[:0]
				for _, p := range points {
					reqs = append(reqs, Request{ID: p.ID, Question: QuestionTotalCost,
						System: p.System, Policy: req.Policy})
				}
				for j, r := range s.Evaluate(ctx, reqs) {
					if isCanceled(r.Err) {
						if err := ctx.Err(); err != nil {
							return nil, err
						}
						return nil, context.Canceled
					}
					var tc TotalCost
					evalErr := error(nil)
					if r.Err != nil {
						// Store the underlying cause, as the serial path
						// does — the *Error wrapper belongs to the batch
						// API, not to first-failure accounting.
						evalErr = r.Err
						if e, ok := r.Err.(*Error); ok && e.Err != nil {
							evalErr = e.Err
						}
					} else {
						tc = *r.TotalCost
					}
					observe(cands[j], points[j], tc, evalErr)
				}
				if cur := gen.Cursor(); save != nil && cur.Candidate-lastSaved >= every {
					if err := save(snapshot(cur)); err != nil {
						return nil, fmt.Errorf("actuary: saving search checkpoint: %w", err)
					}
					lastSaved = cur.Candidate
				}
				if exhausted || budgetLeft() <= 0 {
					break
				}
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		totals.Merge(gen.Stats())
		if !exhausted && budgetLeft() <= 0 {
			budgetHit = true
			break
		}

		// Stage complete: record the incumbent trajectory, let the
		// planner turn the stage's outcome into the next stage, and
		// make the transition durable.
		stageIdx := pl.StageIndex()
		if tops := top.Sorted(); len(tops) > 0 {
			inc := SearchIncumbent{Stage: stageIdx, ID: tops[0].ID, Cost: tops[0].Total.Total()}
			if len(trajectory) == 0 || trajectory[len(trajectory)-1].ID != inc.ID {
				trajectory = append(trajectory, inc)
			}
		}
		pl.Advance(searchFeedback(pl, spec, top, front, slabBest, req.Grid))
		slabBest = make(map[int]float64)
		if save != nil {
			if err := save(snapshot(SweepCursor{})); err != nil {
				return nil, fmt.Errorf("actuary: saving search checkpoint: %w", err)
			}
		}
	}

	stages := pl.StageIndex()
	if !pl.Done() {
		stages++ // the budget-cut stage was walked, just not completed
	}
	if top.Seen() == 0 && req.ShardCount == 0 && !budgetHit {
		// Unsharded and not budget-cut: an empty answer means every
		// candidate the search could reach was pruned or failed — the
		// same infeasibility contract as the exhaustive sweep. A shard
		// may legitimately own zero feasible candidates.
		err := fmt.Errorf("actuary: %w: no feasible point in search of grid %q (%d pruned, %d bound-pruned, %d infeasible)",
			explore.ErrInfeasible, req.Grid.Name, totals.Pruned, totals.BoundPruned, infeasible)
		if firstErr != nil {
			err = fmt.Errorf("%w; first failure: %w", err, firstErr)
		}
		return nil, err
	}
	return &SearchBest{
		Top: top.Sorted(),
		Stats: SearchStats{
			GridSize:        req.Grid.Size(),
			Evaluated:       evaluated,
			Infeasible:      infeasible,
			Pruned:          totals.Pruned,
			Deduped:         totals.Deduped,
			BoundPruned:     totals.BoundPruned,
			Stages:          stages,
			BudgetExhausted: budgetHit,
			Trajectory:      trajectory,
		},
	}, nil
}

// searchFeedback distills the aggregator state a completed stage left
// behind into the planner's input: the frozen admission bound, the
// refinement targets (incumbent best plus Pareto knees) as axis
// tuples, and the per-slab best sampled costs.
func searchFeedback(pl *search.Planner, spec SearchSpec,
	top *sweep.TopK[SweepPoint], front *sweep.Pareto[SweepPoint],
	slabBest map[int]float64, grid *SweepGrid) search.Feedback {
	var fb search.Feedback
	if b, ok := top.Bound(); ok {
		fb.HasBound, fb.Bound = true, b
	}
	if tops := top.Sorted(); len(tops) > 0 {
		if t, ok := searchAxisIndexes(grid, tops[0]); ok {
			fb.Targets = append(fb.Targets, t)
		}
		knees := 0
		if spec.Refine != nil {
			knees = spec.Refine.Knees
		}
		if knees > 0 {
			pts := front.Front()
			objectives := make([][2]float64, len(pts))
			for i, p := range pts {
				objectives[i] = [2]float64{p.Total.RE.Total(), p.Total.NRE.Total()}
			}
			for _, i := range search.Knees(objectives, knees) {
				if t, ok := searchAxisIndexes(grid, pts[i]); ok {
					fb.Targets = append(fb.Targets, t)
				}
			}
		}
	}
	if n := len(pl.Slabs); n > 0 {
		fb.SlabBest = make([]float64, n)
		for i := range fb.SlabBest {
			fb.SlabBest[i] = math.Inf(1)
			if c, ok := slabBest[i]; ok {
				fb.SlabBest[i] = c
			}
		}
	}
	return fb
}

// searchAxisIndexes recovers a sweep point's axis-index tuple from its
// axis values — the reverse of what the generator did when building
// it. Axis values are taken verbatim from the grid's slices, so the
// equality lookups are exact. Monolithic (k = 1) points are emitted at
// scheme index 0 whatever the grid's scheme axis, mirroring the
// generator's dedup rule.
func searchAxisIndexes(g *SweepGrid, p SweepPoint) ([search.NumAxes]int, bool) {
	var idx [search.NumAxes]int
	ok := true
	find := func(n int, eq func(int) bool) int {
		for i := 0; i < n; i++ {
			if eq(i) {
				return i
			}
		}
		ok = false
		return 0
	}
	idx[search.AxisNode] = find(len(g.Nodes), func(i int) bool { return g.Nodes[i] == p.Node })
	if p.K == 1 {
		idx[search.AxisScheme] = 0
	} else {
		idx[search.AxisScheme] = find(len(g.Schemes), func(i int) bool { return g.Schemes[i] == p.Scheme })
	}
	idx[search.AxisQuantity] = find(len(g.Quantities), func(i int) bool { return g.Quantities[i] == p.Quantity })
	idx[search.AxisArea] = find(len(g.AreasMM2), func(i int) bool { return g.AreasMM2[i] == p.AreaMM2 })
	idx[search.AxisCount] = find(len(g.Counts), func(i int) bool { return g.Counts[i] == p.K })
	return idx, ok
}
