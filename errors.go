package actuary

import (
	"context"
	"errors"
	"fmt"

	"chipletactuary/internal/cost"
	"chipletactuary/internal/explore"
	"chipletactuary/internal/tech"
)

// ErrDoesNotFitWafer is the sentinel wrapped by wafer-demand answers
// when a die or interposer is too large for even one placement on the
// production wafer. It classifies as ErrInvalidConfig: the geometry,
// not the production plan, is at fault.
var ErrDoesNotFitWafer = cost.ErrDoesNotFitWafer

// ErrCheckpointMismatch is the sentinel wrapped by resume paths when
// a checkpoint cannot seed the workload it was offered for: a
// fingerprint from a different grid or policy, a cursor outside the
// grid, aggregator state no live run could have produced. It
// classifies as ErrInvalidConfig — fix the checkpoint file or the
// request, retrying changes nothing.
var ErrCheckpointMismatch = errors.New("checkpoint does not match this sweep")

// ErrorCode classifies why one request of a batch failed. The
// taxonomy lets callers route failures without parsing messages:
// retry nothing on ErrInvalidConfig, fix the technology database on
// ErrUnknownNode, treat ErrInfeasible as a legitimate "no" answer,
// resubmit on ErrCanceled, and check the connection on ErrTransport.
// Codes have stable string forms (see ParseErrorCode in wire.go) so
// the taxonomy survives the wire protocol.
type ErrorCode int

const (
	// ErrInvalidConfig marks a malformed request or system
	// description: bad geometry, missing fields, scheme violations.
	ErrInvalidConfig ErrorCode = iota + 1
	// ErrUnknownNode marks a process node absent from the technology
	// database.
	ErrUnknownNode
	// ErrInfeasible marks a well-formed question whose answer does not
	// exist: a partition that never pays back, a sweep with no
	// manufacturable point, a bracket with no crossover.
	ErrInfeasible
	// ErrCanceled marks a request abandoned because the batch context
	// was canceled or timed out before the request ran.
	ErrCanceled
	// ErrTransport marks a request that never reached an evaluator:
	// a network failure, a malformed wire message, or a server-side
	// rejection with no structured body. Produced by the client
	// package, never by a local Session.
	ErrTransport
)

// String implements fmt.Stringer.
func (c ErrorCode) String() string {
	switch c {
	case ErrInvalidConfig:
		return "invalid-config"
	case ErrUnknownNode:
		return "unknown-node"
	case ErrInfeasible:
		return "infeasible"
	case ErrCanceled:
		return "canceled"
	case ErrTransport:
		return "transport"
	default:
		return fmt.Sprintf("ErrorCode(%d)", int(c))
	}
}

// Error is the structured per-request failure returned in
// Result.Err. It records which request failed (batch index and
// optional caller-assigned ID), what was asked, and a classified
// cause; the underlying error remains reachable through Unwrap for
// errors.Is/errors.As chains.
type Error struct {
	// Code classifies the failure.
	Code ErrorCode
	// Index is the request's position in the batch.
	Index int
	// ID echoes Request.ID when the caller set one.
	ID string
	// Question echoes the request's question.
	Question Question
	// Err is the underlying cause.
	Err error
}

// Error implements the error interface. Location and question
// segments appear only when they carry information — client-side
// transport failures have neither a batch index nor a question.
func (e *Error) Error() string {
	var loc string
	switch {
	case e.ID != "":
		loc = " " + e.ID
	case e.Index >= 0:
		loc = fmt.Sprintf(" #%d", e.Index)
	}
	var q string
	if _, err := e.Question.MarshalText(); err == nil {
		q = fmt.Sprintf(" (%s)", e.Question)
	}
	return fmt.Sprintf("actuary: request%s%s: %s: %v", loc, q, e.Code, e.Err)
}

// Unwrap exposes the underlying cause.
func (e *Error) Unwrap() error { return e.Err }

// AsError extracts the structured *Error from an error chain.
func AsError(err error) (*Error, bool) {
	var ae *Error
	ok := errors.As(err, &ae)
	return ae, ok
}

// classify maps an underlying evaluation error onto the code
// taxonomy via the sentinel errors the internal layers wrap.
func classify(err error) ErrorCode {
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return ErrCanceled
	case errors.Is(err, tech.ErrUnknownNode):
		return ErrUnknownNode
	case errors.Is(err, explore.ErrInfeasible):
		return ErrInfeasible
	default:
		// Everything else — including cost.ErrDoesNotFitWafer, which
		// callers can still detect with errors.Is — is a configuration
		// problem.
		return ErrInvalidConfig
	}
}
