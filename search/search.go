// Package search plans adaptive design-space exploration over the
// candidate grids the sweep layer walks exhaustively. It answers the
// same "best points of this grid" question while evaluating a small
// fraction of the candidates, by composing three strategies:
//
//   - coarse-to-fine refinement: walk a subsampled grid (every m-th
//     step per continuous axis), then build refined sub-grids around
//     the incumbent best and each Pareto-knee point, recursing until
//     full resolution;
//   - successive halving: over-partition the candidate space into
//     slabs, evaluate a budgeted sample per slab, keep the
//     best-scoring half, double the per-slab budget, repeat;
//   - lower-bound pruning: skip candidates whose cheap cost lower
//     bound proves them worse than the running K-th best.
//
// The package is pure planning math: a Planner is a deterministic,
// JSON-serializable state machine that turns stage feedback (incumbent
// positions, knee points, per-slab scores, the current admission
// bound) into the next stage's Plans. It owns no evaluation, no grid
// types and no I/O — the session layer walks each stage through the
// existing generator/aggregator/checkpoint machinery, using
// Planner.Selector as a pre-build candidate filter. Candidates are
// identified throughout by their global odometer-order index in the
// base grid, the same shard-independent numbering cursors and shard
// specs already use, which is what makes stage dedup, resume and
// sharding compose: a candidate visited by any earlier stage is never
// walked again, and a restored Planner continues byte-identically.
package search

import (
	"fmt"
	"math"
	"sort"
)

// NumAxes is the number of grid axes, in odometer order: node, scheme,
// quantity, area, count. The area and count axes (indexes AxisArea and
// AxisCount) are the continuous ones refinement strides and re-refines;
// the first three are categorical — always enumerated in full during
// coarse stages and pinned during refinement.
const NumAxes = 5

// Axis indexes into a dims/index tuple, in odometer order.
const (
	AxisNode = iota
	AxisScheme
	AxisQuantity
	AxisArea
	AxisCount
)

// Spec configures an adaptive search. The zero value (with Bound
// false) degenerates to an exhaustive walk; Bound alone keeps the walk
// exhaustive-exact while skipping provably-worse candidates; Refine
// and/or Halving trade exactness for evaluation count, within the
// documented Tolerance.
type Spec struct {
	// Budget caps the number of evaluated points; 0 means unlimited.
	// An exhausted budget ends the search at the next stage-tranche
	// boundary with the best answer so far.
	Budget int `json:"budget,omitempty"`
	// Bound enables lower-bound pruning: candidates whose cost lower
	// bound exceeds the running K-th best are skipped before
	// evaluation. Pruning alone never changes the answer — a skipped
	// candidate is provably absent from the exact top-K.
	Bound bool `json:"bound,omitempty"`
	// Tolerance is the configured relative optimality gap the caller
	// accepts from refinement/halving (e.g. 0.02 for 2%). It is
	// reported, not enforced: sampling strategies cannot guarantee a
	// gap on arbitrary cost landscapes.
	Tolerance float64 `json:"tolerance,omitempty"`
	// Refine enables coarse-to-fine refinement.
	Refine *RefineSpec `json:"refine,omitempty"`
	// Halving enables successive halving. When combined with Refine,
	// halving runs first and refinement then polishes around the
	// incumbents it found.
	Halving *HalvingSpec `json:"halving,omitempty"`
}

// RefineSpec configures coarse-to-fine refinement.
type RefineSpec struct {
	// Factor is the initial stride on the continuous axes (area,
	// count): the coarse stage walks every Factor-th value. Each
	// refinement round halves the stride until it reaches 1 (full
	// resolution). Must be ≥ 2.
	Factor int `json:"factor"`
	// Knees is how many Pareto-knee points are refined alongside the
	// incumbent best each round (0 refines the incumbent only).
	Knees int `json:"knees,omitempty"`
}

// HalvingSpec configures successive halving.
type HalvingSpec struct {
	// Slabs is the initial number of contiguous candidate slabs the
	// space is over-partitioned into. Must be ≥ 2.
	Slabs int `json:"slabs"`
	// Sample is the initial per-slab evaluation budget; it doubles
	// each round as the slab population halves. Must be ≥ 1.
	Sample int `json:"sample"`
}

// Validate checks the spec's knobs.
func (s Spec) Validate() error {
	if s.Budget < 0 {
		return fmt.Errorf("search: negative budget %d", s.Budget)
	}
	if s.Tolerance < 0 {
		return fmt.Errorf("search: negative tolerance %v", s.Tolerance)
	}
	if r := s.Refine; r != nil {
		if r.Factor < 2 {
			return fmt.Errorf("search: refine factor %d < 2 (a 1-stride coarse stage is the exhaustive walk)", r.Factor)
		}
		if r.Knees < 0 {
			return fmt.Errorf("search: negative knee count %d", r.Knees)
		}
	}
	if h := s.Halving; h != nil {
		if h.Slabs < 2 {
			return fmt.Errorf("search: halving wants ≥ 2 slabs, got %d", h.Slabs)
		}
		if h.Sample < 1 {
			return fmt.Errorf("search: halving sample %d < 1", h.Sample)
		}
	}
	return nil
}

// Exhaustive reports whether the spec walks every candidate exactly
// once (no refinement, no halving): with Bound set the walk still
// skips provably-worse candidates but the answer equals the exhaustive
// sweep's byte for byte.
func (s Spec) Exhaustive() bool { return s.Refine == nil && s.Halving == nil }

// Decompose splits a global candidate index into its per-axis indexes
// (odometer order, last axis fastest) — the inverse of the mixed-radix
// numbering the sweep odometer uses.
func Decompose(cand int, dims [NumAxes]int) [NumAxes]int {
	var idx [NumAxes]int
	for a := NumAxes - 1; a >= 0; a-- {
		idx[a] = cand % dims[a]
		cand /= dims[a]
	}
	return idx
}

// Compose is the inverse of Decompose: the global candidate index of
// an axis-index tuple.
func Compose(idx [NumAxes]int, dims [NumAxes]int) int {
	cand := 0
	for a := 0; a < NumAxes; a++ {
		cand = cand*dims[a] + idx[a]
	}
	return cand
}

// Knees picks up to n knee points of a 2-objective Pareto front: the
// points closest (in objectives normalized to the front's own ranges)
// to the utopia corner, the classic knee heuristic. The front is given
// as (x, y) pairs, both minimized; the return is the chosen indexes
// into front, in selection order. Ties break toward the lower index,
// so the choice is deterministic.
func Knees(front [][2]float64, n int) []int {
	if n <= 0 || len(front) == 0 {
		return nil
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range front {
		minX, maxX = math.Min(minX, p[0]), math.Max(maxX, p[0])
		minY, maxY = math.Min(minY, p[1]), math.Max(maxY, p[1])
	}
	spanX, spanY := maxX-minX, maxY-minY
	type scored struct {
		idx int
		d   float64
	}
	s := make([]scored, len(front))
	for i, p := range front {
		nx, ny := 0.0, 0.0
		if spanX > 0 {
			nx = (p[0] - minX) / spanX
		}
		if spanY > 0 {
			ny = (p[1] - minY) / spanY
		}
		s[i] = scored{idx: i, d: nx*nx + ny*ny}
	}
	sort.SliceStable(s, func(i, j int) bool { return s[i].d < s[j].d })
	if n > len(s) {
		n = len(s)
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = s[i].idx
	}
	return out
}

// ceilDiv returns ⌈a/b⌉ for positive b.
func ceilDiv(a, b int) int { return (a + b - 1) / b }
