package search

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// drive walks a planner to completion against a synthetic cost
// function, feeding back exactly what the real executor would: the
// incumbent target, the k-th-best bound and the per-slab best costs.
// It returns how often each candidate was selected and the best
// candidate found.
func drive(t *testing.T, pl *Planner, cost func(int) float64, k int) (map[int]int, int) {
	t.Helper()
	visited := make(map[int]int)
	var costs []float64
	best, bestCost := -1, math.Inf(1)
	for stages := 0; !pl.Done(); stages++ {
		if stages > 200 {
			t.Fatalf("planner did not terminate within 200 stages (phase %v)", pl.Phase)
		}
		sel := pl.Selector()
		slabBest := make([]float64, len(pl.Slabs))
		for i := range slabBest {
			slabBest[i] = math.Inf(1)
		}
		for cand := 0; cand < pl.Size; cand++ {
			if !sel(cand) {
				continue
			}
			visited[cand]++
			c := cost(cand)
			costs = append(costs, c)
			if c < bestCost {
				best, bestCost = cand, c
			}
			if i := pl.SlabIndex(cand); i >= 0 && c < slabBest[i] {
				slabBest[i] = c
			}
		}
		fb := Feedback{SlabBest: slabBest}
		if best >= 0 {
			fb.Targets = [][NumAxes]int{Decompose(best, pl.Dims)}
		}
		if len(costs) >= k {
			sorted := append([]float64(nil), costs...)
			for i := range sorted { // selection of the k-th smallest
				for j := i + 1; j < len(sorted); j++ {
					if sorted[j] < sorted[i] {
						sorted[i], sorted[j] = sorted[j], sorted[i]
					}
				}
				if i == k-1 {
					fb.HasBound, fb.Bound = true, sorted[i]
					break
				}
			}
		}
		pl.Advance(fb)
	}
	return visited, best
}

// quadCost is a separable unimodal cost centered on target: the kind
// of smooth landscape coarse-to-fine refinement is built for.
func quadCost(dims, target [NumAxes]int) func(int) float64 {
	return func(cand int) float64 {
		idx := Decompose(cand, dims)
		c := 0.0
		for a := 0; a < NumAxes; a++ {
			d := float64(idx[a] - target[a])
			c += d * d
		}
		return c
	}
}

func TestSpecValidate(t *testing.T) {
	good := []Spec{
		{},
		{Bound: true, Budget: 100, Tolerance: 0.05},
		{Refine: &RefineSpec{Factor: 4, Knees: 2}},
		{Halving: &HalvingSpec{Slabs: 8, Sample: 16}},
		{Bound: true, Refine: &RefineSpec{Factor: 2}, Halving: &HalvingSpec{Slabs: 2, Sample: 1}},
	}
	for i, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("spec %d should validate: %v", i, err)
		}
	}
	bad := []Spec{
		{Budget: -1},
		{Tolerance: -0.1},
		{Refine: &RefineSpec{Factor: 1}},
		{Refine: &RefineSpec{Factor: 4, Knees: -1}},
		{Halving: &HalvingSpec{Slabs: 1, Sample: 4}},
		{Halving: &HalvingSpec{Slabs: 4, Sample: 0}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d (%+v) should be rejected", i, s)
		}
	}
}

func TestComposeDecomposeRoundTrip(t *testing.T) {
	dims := [NumAxes]int{3, 2, 4, 7, 5}
	size := 3 * 2 * 4 * 7 * 5
	for cand := 0; cand < size; cand++ {
		idx := Decompose(cand, dims)
		for a := 0; a < NumAxes; a++ {
			if idx[a] < 0 || idx[a] >= dims[a] {
				t.Fatalf("candidate %d axis %d index %d out of range", cand, a, idx[a])
			}
		}
		if back := Compose(idx, dims); back != cand {
			t.Fatalf("Compose(Decompose(%d)) = %d", cand, back)
		}
	}
}

func TestPlanGeometry(t *testing.T) {
	dims := [NumAxes]int{2, 3, 2, 9, 6}
	size := 2 * 3 * 2 * 9 * 6
	plans := []Plan{
		{Windows: []Window{{0, 2, 1}, {0, 3, 1}, {0, 2, 1}, {0, 3, 4}, {1, 2, 3}}},
		{Stripes: []Stripe{{Start: 7, End: 100, Step: 13}, {Start: 200, End: 216, Step: 1}}},
	}
	for pi, p := range plans {
		if err := p.validate(dims, size); err != nil {
			t.Fatalf("plan %d should validate: %v", pi, err)
		}
		n := 0
		for cand := 0; cand < size; cand++ {
			if p.Contains(cand, Decompose(cand, dims)) {
				n++
			}
		}
		if n != p.Size() {
			t.Errorf("plan %d: Size says %d, enumeration finds %d", pi, p.Size(), n)
		}
	}
	badWindows := Plan{Windows: []Window{{0, 3, 1}, {0, 3, 1}, {0, 2, 1}, {0, 3, 4}, {1, 2, 3}}}
	if err := badWindows.validate(dims, size); err == nil {
		t.Error("window past the axis end should be rejected")
	}
	if err := (Plan{}).validate(dims, size); err == nil {
		t.Error("plan with neither windows nor stripes should be rejected")
	}
}

func TestPlannerExactCoversEverythingOnce(t *testing.T) {
	dims := [NumAxes]int{2, 2, 2, 5, 4}
	pl, err := New(Spec{Bound: true}, dims)
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Stage().Running {
		t.Error("exact stage with Bound should carry the running-bound marker")
	}
	visited, _ := drive(t, pl, quadCost(dims, [NumAxes]int{1, 0, 1, 2, 2}), 1)
	if len(visited) != pl.Size {
		t.Fatalf("exact planner visited %d of %d candidates", len(visited), pl.Size)
	}
	for cand, n := range visited {
		if n != 1 {
			t.Fatalf("candidate %d selected %d times", cand, n)
		}
	}
}

// TestPlannerNeverRevisits is the dedup property: across every stage
// of any strategy, no candidate is ever selected twice — History-plan
// membership is the only bookkeeping, and it must suffice.
func TestPlannerNeverRevisits(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	specs := []Spec{
		{Refine: &RefineSpec{Factor: 4}},
		{Refine: &RefineSpec{Factor: 8, Knees: 2}, Bound: true},
		{Halving: &HalvingSpec{Slabs: 8, Sample: 6}},
		{Halving: &HalvingSpec{Slabs: 5, Sample: 3}, Refine: &RefineSpec{Factor: 4}, Bound: true},
	}
	for trial := 0; trial < 12; trial++ {
		spec := specs[trial%len(specs)]
		dims := [NumAxes]int{1 + rng.Intn(3), 1 + rng.Intn(3), 1 + rng.Intn(2),
			1 + rng.Intn(24), 1 + rng.Intn(10)}
		target := [NumAxes]int{}
		for a := 0; a < NumAxes; a++ {
			target[a] = rng.Intn(dims[a])
		}
		pl, err := New(spec, dims)
		if err != nil {
			t.Fatal(err)
		}
		visited, _ := drive(t, pl, quadCost(dims, target), 3)
		for cand, n := range visited {
			if n != 1 {
				t.Fatalf("trial %d (%+v dims %v): candidate %d selected %d times",
					trial, spec, dims, cand, n)
			}
		}
		if len(visited) == 0 {
			t.Fatalf("trial %d: planner selected nothing", trial)
		}
	}
}

// TestPlannerRefineFindsUnimodalOptimum: on a separable unimodal
// landscape, coarse-to-fine refinement must land on the exact global
// optimum — the coarse grid brackets it and every refinement step
// keeps it inside the window.
func TestPlannerRefineFindsUnimodalOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		dims := [NumAxes]int{2, 2, 1, 16 + rng.Intn(33), 4 + rng.Intn(13)}
		target := [NumAxes]int{}
		for a := 0; a < NumAxes; a++ {
			target[a] = rng.Intn(dims[a])
		}
		pl, err := New(Spec{Refine: &RefineSpec{Factor: 4}}, dims)
		if err != nil {
			t.Fatal(err)
		}
		visited, best := drive(t, pl, quadCost(dims, target), 1)
		if want := Compose(target, dims); best != want {
			t.Errorf("trial %d: refinement found %v, optimum is %v (visited %d of %d)",
				trial, Decompose(best, dims), target, len(visited), pl.Size)
		}
		if len(visited) == pl.Size && pl.Size > 64 {
			t.Errorf("trial %d: refinement visited the whole %d-candidate grid", trial, pl.Size)
		}
	}
}

// TestPlannerHalvingConverges: successive halving must end with one
// slab and have sampled the winner's slab at the final budget.
func TestPlannerHalvingConverges(t *testing.T) {
	dims := [NumAxes]int{2, 2, 2, 10, 8}
	pl, err := New(Spec{Halving: &HalvingSpec{Slabs: 8, Sample: 4}}, dims)
	if err != nil {
		t.Fatal(err)
	}
	rounds := 0
	for !pl.Done() {
		rounds++
		if rounds > 50 {
			t.Fatal("halving did not converge")
		}
		sel := pl.Selector()
		slabBest := make([]float64, len(pl.Slabs))
		for i := range slabBest {
			slabBest[i] = math.Inf(1)
		}
		for cand := 0; cand < pl.Size; cand++ {
			if sel(cand) {
				if i := pl.SlabIndex(cand); i >= 0 {
					c := float64(cand) // cheaper toward candidate 0
					if c < slabBest[i] {
						slabBest[i] = c
					}
				}
			}
		}
		slabs := append([]Slab(nil), pl.Slabs...)
		pl.Advance(Feedback{SlabBest: slabBest})
		if !pl.Done() && len(pl.Slabs) != (len(slabs)+1)/2 {
			t.Fatalf("halving kept %d of %d slabs", len(pl.Slabs), len(slabs))
		}
		if pl.Done() {
			// With cost = candidate index, the last surviving slab must
			// be the first one (Advance clears the slab set on exit).
			if len(slabs) != 1 || slabs[0].Start != 0 {
				t.Errorf("surviving slabs %+v, want the one starting at 0", slabs)
			}
		}
	}
}

// TestPlannerJSONRoundTrip: a planner serialized mid-run and decoded
// back selects exactly the same candidates for the rest of the search —
// the property every checkpoint resume rests on.
func TestPlannerJSONRoundTrip(t *testing.T) {
	dims := [NumAxes]int{2, 3, 2, 18, 7}
	cost := quadCost(dims, [NumAxes]int{1, 2, 0, 13, 4})
	pl, err := New(Spec{Halving: &HalvingSpec{Slabs: 6, Sample: 4},
		Refine: &RefineSpec{Factor: 4}, Bound: true}, dims)
	if err != nil {
		t.Fatal(err)
	}
	best, bestCost := -1, math.Inf(1)
	for !pl.Done() {
		data, err := json.Marshal(pl)
		if err != nil {
			t.Fatal(err)
		}
		back := new(Planner)
		if err := json.Unmarshal(data, back); err != nil {
			t.Fatal(err)
		}
		if err := back.Validate(); err != nil {
			t.Fatalf("round-tripped planner does not validate: %v", err)
		}
		if !reflect.DeepEqual(pl, back) {
			t.Fatalf("planner changed across JSON round trip:\n got %+v\nwant %+v", back, pl)
		}
		sel, selBack := pl.Selector(), back.Selector()
		slabBest := make([]float64, len(pl.Slabs))
		for i := range slabBest {
			slabBest[i] = math.Inf(1)
		}
		for cand := 0; cand < pl.Size; cand++ {
			a, b := sel(cand), selBack(cand)
			if a != b {
				t.Fatalf("selectors disagree on candidate %d (%v vs %v)", cand, a, b)
			}
			if !a {
				continue
			}
			c := cost(cand)
			if c < bestCost {
				best, bestCost = cand, c
			}
			if i := pl.SlabIndex(cand); i >= 0 && c < slabBest[i] {
				slabBest[i] = c
			}
		}
		fb := Feedback{SlabBest: slabBest, HasBound: best >= 0, Bound: bestCost}
		if best >= 0 {
			fb.Targets = [][NumAxes]int{Decompose(best, dims)}
		}
		pl.Advance(fb)
		back.Advance(fb)
		if !reflect.DeepEqual(pl, back) {
			t.Fatal("planners diverged after identical Advance")
		}
	}
}

func TestKnees(t *testing.T) {
	// A front with an obvious knee at (1,1): the extremes trade one
	// objective for a lot of the other.
	front := [][2]float64{{0, 10}, {1, 1}, {10, 0}}
	got := Knees(front, 1)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("Knees = %v, want [1]", got)
	}
	if got := Knees(front, 5); len(got) != 3 {
		t.Errorf("Knees capped at front size: got %v", got)
	}
	if got := Knees(nil, 3); len(got) != 0 {
		t.Errorf("Knees of an empty front: got %v", got)
	}
	// A single-point front normalizes degenerately but must not panic.
	if got := Knees([][2]float64{{5, 5}}, 2); len(got) != 1 || got[0] != 0 {
		t.Errorf("Knees of a singleton front: got %v", got)
	}
}

func TestPartition(t *testing.T) {
	for _, tc := range []struct{ size, n int }{{10, 3}, {7, 7}, {100, 8}, {5, 2}} {
		slabs := partition(tc.size, tc.n)
		if len(slabs) != tc.n {
			t.Fatalf("partition(%d,%d) has %d slabs", tc.size, tc.n, len(slabs))
		}
		next, total := 0, 0
		for _, sl := range slabs {
			if sl.Start != next || sl.End <= sl.Start {
				t.Fatalf("partition(%d,%d): bad slab %+v at %d", tc.size, tc.n, sl, next)
			}
			if l := sl.End - sl.Start; l < tc.size/tc.n || l > tc.size/tc.n+1 {
				t.Fatalf("partition(%d,%d): slab length %d unbalanced", tc.size, tc.n, l)
			}
			next = sl.End
			total += sl.End - sl.Start
		}
		if total != tc.size {
			t.Fatalf("partition(%d,%d) covers %d", tc.size, tc.n, total)
		}
	}
}

func TestPlannerValidateRejects(t *testing.T) {
	dims := [NumAxes]int{2, 2, 2, 4, 4}
	fresh := func() *Planner {
		pl, err := New(Spec{Halving: &HalvingSpec{Slabs: 4, Sample: 2}}, dims)
		if err != nil {
			t.Fatal(err)
		}
		return pl
	}
	corrupt := []func(*Planner){
		func(pl *Planner) { pl.Size = 7 },
		func(pl *Planner) { pl.Phase = "sideways" },
		func(pl *Planner) { pl.Current = nil }, // phase says halving
		func(pl *Planner) { pl.Slabs[0].End = pl.Size + 5 },
		func(pl *Planner) { pl.Slabs = []Slab{{Start: 10, End: 20}, {Start: 5, End: 15}} },
		func(pl *Planner) { pl.Current.Plans = nil },
		func(pl *Planner) { pl.Current.Plans[0].Stripes[0].End = pl.Size + 1 },
		func(pl *Planner) { pl.Dims[2] = 0 },
	}
	for i, mutate := range corrupt {
		pl := fresh()
		if err := pl.Validate(); err != nil {
			t.Fatalf("fresh planner should validate: %v", err)
		}
		mutate(pl)
		if err := pl.Validate(); err == nil {
			t.Errorf("corruption %d went undetected", i)
		}
	}
}
