package search

// Stats reports what an adaptive search did — the observability half
// of the contract: savings that cannot be measured cannot be trusted.
// The counters mirror the sweep generator's taxonomy so exhaustive and
// adaptive runs compare field by field.
type Stats struct {
	// GridSize is the full candidate count of the base grid (the
	// denominator of the savings claim). For a sharded search it is
	// still the whole grid's size; per-shard Evaluated sums across
	// shards.
	GridSize int `json:"grid_size"`
	// Evaluated is how many candidates were actually cost-evaluated.
	Evaluated int `json:"evaluated"`
	// Infeasible counts evaluated candidates the cost model rejected.
	Infeasible int `json:"infeasible,omitempty"`
	// Pruned counts candidates dropped by feasibility filters
	// (reticle, interposer, unbuildable combinations).
	Pruned int `json:"pruned,omitempty"`
	// Deduped counts scheme-duplicate monolithic candidates skipped.
	Deduped int `json:"deduped,omitempty"`
	// BoundPruned counts candidates skipped by the cost lower bound —
	// feasible designs proven worse than the running K-th best.
	BoundPruned int `json:"bound_pruned,omitempty"`
	// Stages is how many stages the search walked.
	Stages int `json:"stages"`
	// BudgetExhausted marks a search cut short by Spec.Budget.
	BudgetExhausted bool `json:"budget_exhausted,omitempty"`
	// Trajectory records the incumbent best after each stage on which
	// it changed — the convergence history.
	Trajectory []Incumbent `json:"trajectory,omitempty"`
}

// Incumbent is one step of the incumbent-best trajectory.
type Incumbent struct {
	// Stage is the zero-based stage after which this incumbent led.
	Stage int `json:"stage"`
	// ID is the design point's label.
	ID string `json:"id"`
	// Cost is its total cost.
	Cost float64 `json:"cost"`
}

// EvaluatedRatio returns Evaluated / GridSize (0 for an empty grid) —
// the headline savings number.
func (s Stats) EvaluatedRatio() float64 {
	if s.GridSize == 0 {
		return 0
	}
	return float64(s.Evaluated) / float64(s.GridSize)
}

// Merge folds another shard's stats into this one: counters add,
// GridSize stays (every shard reports the same base grid), stage
// counts take the maximum (shards advance through the same phases),
// and trajectories concatenate in stage order.
func (s *Stats) Merge(o Stats) {
	if s.GridSize == 0 {
		s.GridSize = o.GridSize
	}
	s.Evaluated += o.Evaluated
	s.Infeasible += o.Infeasible
	s.Pruned += o.Pruned
	s.Deduped += o.Deduped
	s.BoundPruned += o.BoundPruned
	if o.Stages > s.Stages {
		s.Stages = o.Stages
	}
	s.BudgetExhausted = s.BudgetExhausted || o.BudgetExhausted
}
