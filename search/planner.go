package search

import (
	"fmt"
	"math"
	"sort"
)

// Phase names the planner's position in its strategy pipeline.
type Phase string

const (
	// PhaseExact is the single exhaustive-exact stage (no refinement,
	// no halving; lower-bound pruning optional).
	PhaseExact Phase = "exact"
	// PhaseHalving is the successive-halving rounds.
	PhaseHalving Phase = "halving"
	// PhaseRefine is the coarse-to-fine refinement rounds.
	PhaseRefine Phase = "refine"
	// PhaseDone means no stage remains.
	PhaseDone Phase = "done"
)

// Slab is one contiguous run [Start, End) of the candidate index
// space — the unit successive halving scores and discards.
type Slab struct {
	Start int `json:"start"`
	End   int `json:"end"`
}

// Feedback is what the executor reports when a stage completes; the
// planner's Advance turns it into the next stage. Every field is
// derived from aggregator state the checkpoint already carries, so a
// resumed run advances identically.
type Feedback struct {
	// Targets are the axis tuples refinement should zoom into —
	// incumbent best first, then knee points. Duplicates are fine (the
	// planner dedups); empty ends refinement.
	Targets [][NumAxes]int
	// SlabBest is the best sampled cost per current slab (aligned with
	// Slabs()); math.Inf(1) marks a slab with no feasible sample.
	// Consulted only in the halving phase.
	SlabBest []float64
	// HasBound/Bound carry the current K-th-best cost, frozen into the
	// next stage for pruning. Ignored unless the spec enables Bound.
	HasBound bool
	Bound    float64
}

// Planner is the deterministic stage machine of one adaptive search.
// All state is exported and JSON-tagged: a checkpoint serializes the
// whole planner, and the restored value continues exactly where the
// snapshot stood — History is both the dedup record (via Selector) and
// the provenance of every stage the search has walked.
type Planner struct {
	Spec  Spec         `json:"spec"`
	Dims  [NumAxes]int `json:"dims"`
	Size  int          `json:"size"`
	Phase Phase        `json:"phase"`
	// Round counts stages within the current phase.
	Round int `json:"round"`
	// Stride is the refinement resolution reached so far (refine
	// phase; 1 = full resolution).
	Stride int `json:"stride,omitempty"`
	// Slabs are the surviving halving slabs, ascending by Start.
	Slabs []Slab `json:"slabs,omitempty"`
	// Sample is the current per-slab sample budget (halving phase).
	Sample int `json:"sample,omitempty"`
	// History holds every completed stage, in order.
	History []Stage `json:"history,omitempty"`
	// Current is the stage being walked; nil when the search is done.
	Current *Stage `json:"current,omitempty"`
}

// New builds the planner for a spec over a grid with the given axis
// lengths (odometer order).
func New(spec Spec, dims [NumAxes]int) (*Planner, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	size := 1
	for a, d := range dims {
		if d < 1 {
			return nil, fmt.Errorf("search: axis %d has %d values", a, d)
		}
		size *= d
	}
	pl := &Planner{Spec: spec, Dims: dims, Size: size}
	switch {
	case spec.Halving != nil:
		pl.Phase = PhaseHalving
		n := spec.Halving.Slabs
		if n > size {
			n = size
		}
		pl.Slabs = partition(size, n)
		pl.Sample = spec.Halving.Sample
		pl.Current = pl.sampleStage(Feedback{})
	case spec.Refine != nil:
		pl.Phase = PhaseRefine
		pl.Stride = spec.Refine.Factor
		pl.Current = pl.coarseStage()
	default:
		pl.Phase = PhaseExact
		pl.Current = &Stage{Plans: []Plan{pl.fullPlan()}, Running: spec.Bound}
	}
	return pl, nil
}

// Done reports whether any stage remains to walk.
func (pl *Planner) Done() bool { return pl.Current == nil }

// Stage returns the stage currently being walked (nil when done).
func (pl *Planner) Stage() *Stage { return pl.Current }

// StageIndex returns the zero-based index of the current stage.
func (pl *Planner) StageIndex() int { return len(pl.History) }

// SlabIndex returns which current slab owns the candidate, or -1 —
// the executor uses it to attribute sampled costs for SlabBest.
func (pl *Planner) SlabIndex(cand int) int {
	i := sort.Search(len(pl.Slabs), func(i int) bool { return pl.Slabs[i].End > cand })
	if i < len(pl.Slabs) && cand >= pl.Slabs[i].Start {
		return i
	}
	return -1
}

// Selector returns the current stage's candidate filter: true for
// candidates this stage selects that no earlier stage already visited.
// The closure is safe to use for one full walk of the current stage;
// Advance invalidates it.
func (pl *Planner) Selector() func(cand int) bool {
	cur, hist, dims := pl.Current, pl.History, pl.Dims
	return func(cand int) bool {
		idx := Decompose(cand, dims)
		in := false
		for i := range cur.Plans {
			if cur.Plans[i].Contains(cand, idx) {
				in = true
				break
			}
		}
		if !in {
			return false
		}
		for s := range hist {
			for i := range hist[s].Plans {
				if hist[s].Plans[i].Contains(cand, idx) {
					return false
				}
			}
		}
		return true
	}
}

// Advance completes the current stage and plans the next from the
// feedback. It is a pure function of (planner state, feedback): the
// same inputs always produce the same stage sequence, which is what
// keeps resumed and sharded searches deterministic.
func (pl *Planner) Advance(fb Feedback) {
	if pl.Current == nil {
		return
	}
	pl.History = append(pl.History, *pl.Current)
	pl.Current = nil
	switch pl.Phase {
	case PhaseExact:
		pl.Phase = PhaseDone
	case PhaseHalving:
		if len(pl.Slabs) > 1 {
			pl.halve(fb.SlabBest)
			pl.Sample *= 2
			pl.Round++
			pl.Current = pl.sampleStage(fb)
			return
		}
		// The last slab has been sampled at the final budget: halving
		// is complete. Hand the incumbents to refinement if configured.
		pl.enterRefine(fb)
	case PhaseRefine:
		if pl.Stride <= 1 {
			pl.Phase = PhaseDone
			return
		}
		pl.refineStep(fb)
	default:
		pl.Phase = PhaseDone
	}
}

// enterRefine transitions out of halving: straight to done without a
// refine spec, otherwise into target refinement at the configured
// factor (halving already surveyed the space, so no coarse stage).
func (pl *Planner) enterRefine(fb Feedback) {
	pl.Slabs, pl.Sample = nil, 0
	if pl.Spec.Refine == nil {
		pl.Phase = PhaseDone
		return
	}
	pl.Phase = PhaseRefine
	pl.Round = 0
	pl.Stride = pl.Spec.Refine.Factor
	pl.refineStep(fb)
}

// refineStep halves the stride and plans windows around the targets.
// No targets (nothing feasible found yet) ends refinement: there is
// nothing to zoom into.
func (pl *Planner) refineStep(fb Feedback) {
	span := pl.Stride
	stride := span / 2
	if stride < 1 {
		stride = 1
	}
	plans := pl.targetPlans(fb.Targets, span, stride)
	if len(plans) == 0 {
		pl.Phase = PhaseDone
		return
	}
	pl.Stride = stride
	pl.Round++
	pl.Current = pl.stage(plans, fb)
}

// stage wraps plans with the bound frozen from the feedback.
func (pl *Planner) stage(plans []Plan, fb Feedback) *Stage {
	st := &Stage{Plans: plans}
	if pl.Spec.Bound && fb.HasBound {
		st.HasBound, st.Bound = true, fb.Bound
	}
	return st
}

// fullPlan selects the whole grid.
func (pl *Planner) fullPlan() Plan {
	w := make([]Window, NumAxes)
	for a := 0; a < NumAxes; a++ {
		w[a] = Window{Start: 0, Count: pl.Dims[a], Stride: 1}
	}
	return Plan{Windows: w}
}

// coarseStage strides the continuous axes by the refine factor and
// enumerates the categorical axes in full.
func (pl *Planner) coarseStage() *Stage {
	m := pl.Stride
	w := make([]Window, NumAxes)
	for a := 0; a < NumAxes; a++ {
		if a == AxisArea || a == AxisCount {
			w[a] = Window{Start: 0, Count: ceilDiv(pl.Dims[a], m), Stride: m}
		} else {
			w[a] = Window{Start: 0, Count: pl.Dims[a], Stride: 1}
		}
	}
	return &Stage{Plans: []Plan{{Windows: w}}}
}

// targetPlans builds one sub-grid plan per distinct target: the
// categorical axes pinned, the continuous axes covering ±span around
// the target at the new stride (clamped to the axis). Every selected
// value lies on the base grid, so candidates keep their global index.
func (pl *Planner) targetPlans(targets [][NumAxes]int, span, stride int) []Plan {
	var plans []Plan
	seen := make(map[[NumAxes]int]bool, len(targets))
	steps := ceilDiv(span, stride)
	for _, t := range targets {
		if seen[t] {
			continue
		}
		seen[t] = true
		w := make([]Window, NumAxes)
		ok := true
		for a := 0; a < NumAxes; a++ {
			if t[a] < 0 || t[a] >= pl.Dims[a] {
				ok = false
				break
			}
			if a == AxisArea || a == AxisCount {
				down := min(steps, t[a]/stride)
				up := min(steps, (pl.Dims[a]-1-t[a])/stride)
				w[a] = Window{Start: t[a] - down*stride, Count: down + up + 1, Stride: stride}
			} else {
				w[a] = Window{Start: t[a], Count: 1, Stride: 1}
			}
		}
		if ok {
			plans = append(plans, Plan{Windows: w})
		}
	}
	return plans
}

// sampleStage stripes every current slab with at most Sample evenly
// spaced candidates.
func (pl *Planner) sampleStage(fb Feedback) *Stage {
	stripes := make([]Stripe, 0, len(pl.Slabs))
	for _, sl := range pl.Slabs {
		n := sl.End - sl.Start
		step := ceilDiv(n, pl.Sample)
		if step < 1 {
			step = 1
		}
		stripes = append(stripes, Stripe{Start: sl.Start, End: sl.End, Step: step})
	}
	return pl.stage([]Plan{{Stripes: stripes}}, fb)
}

// halve keeps the best-scoring half of the slabs (ties toward the
// lower slab index), restoring ascending order afterwards so stripes
// and SlabIndex stay sorted.
func (pl *Planner) halve(slabBest []float64) {
	type scored struct {
		slab Slab
		cost float64
		idx  int
	}
	s := make([]scored, len(pl.Slabs))
	for i, sl := range pl.Slabs {
		cost := math.Inf(1)
		if i < len(slabBest) {
			cost = slabBest[i]
		}
		s[i] = scored{slab: sl, cost: cost, idx: i}
	}
	sort.SliceStable(s, func(i, j int) bool {
		if s[i].cost != s[j].cost {
			return s[i].cost < s[j].cost
		}
		return s[i].idx < s[j].idx
	})
	keep := (len(s) + 1) / 2
	kept := make([]Slab, keep)
	for i := 0; i < keep; i++ {
		kept[i] = s[i].slab
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Start < kept[j].Start })
	pl.Slabs = kept
}

// Validate checks a planner decoded from a checkpoint: the spec, the
// geometry of every plan, and the phase machinery, so a corrupt or
// hand-edited checkpoint fails loudly instead of mis-walking.
func (pl *Planner) Validate() error {
	if err := pl.Spec.Validate(); err != nil {
		return err
	}
	size := 1
	for a, d := range pl.Dims {
		if d < 1 {
			return fmt.Errorf("search: planner axis %d has %d values", a, d)
		}
		size *= d
	}
	if pl.Size != size {
		return fmt.Errorf("search: planner size %d does not match dims (%d)", pl.Size, size)
	}
	switch pl.Phase {
	case PhaseExact, PhaseHalving, PhaseRefine, PhaseDone:
	default:
		return fmt.Errorf("search: unknown planner phase %q", pl.Phase)
	}
	if (pl.Phase == PhaseDone) != (pl.Current == nil) {
		return fmt.Errorf("search: planner phase %q inconsistent with current stage", pl.Phase)
	}
	for i, sl := range pl.Slabs {
		if sl.Start < 0 || sl.End <= sl.Start || sl.End > pl.Size {
			return fmt.Errorf("search: slab %d (%+v) outside the %d-candidate space", i, sl, pl.Size)
		}
		if i > 0 && sl.Start < pl.Slabs[i-1].End {
			return fmt.Errorf("search: slabs %d and %d overlap or are unsorted", i-1, i)
		}
	}
	check := func(st Stage) error {
		if len(st.Plans) == 0 {
			return fmt.Errorf("search: stage with no plans")
		}
		for _, p := range st.Plans {
			if err := p.validate(pl.Dims, pl.Size); err != nil {
				return err
			}
		}
		if st.Running && !pl.Spec.Exhaustive() {
			return fmt.Errorf("search: running-bound stage in a staged (refine/halving) search")
		}
		return nil
	}
	for _, st := range pl.History {
		if err := check(st); err != nil {
			return err
		}
	}
	if pl.Current != nil {
		if err := check(*pl.Current); err != nil {
			return err
		}
	}
	return nil
}

// partition splits [0, size) into n contiguous slabs whose lengths
// differ by at most one (earlier slabs take the remainder).
func partition(size, n int) []Slab {
	out := make([]Slab, n)
	base, rem := size/n, size%n
	start := 0
	for i := 0; i < n; i++ {
		l := base
		if i < rem {
			l++
		}
		out[i] = Slab{Start: start, End: start + l}
		start += l
	}
	return out
}
