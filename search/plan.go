package search

import "fmt"

// Window selects a strided run of one axis: the indexes Start,
// Start+Stride, …, Count of them. A {0, len(axis), 1} window is the
// whole axis; a {i, 1, 1} window pins the axis to one value.
type Window struct {
	Start  int `json:"start"`
	Count  int `json:"count"`
	Stride int `json:"stride"`
}

func (w Window) contains(i int) bool {
	d := i - w.Start
	return d >= 0 && d%w.Stride == 0 && d/w.Stride < w.Count
}

// Stripe selects a strided run of the global candidate index space:
// Start, Start+Step, … below End. Successive-halving rounds sample
// their slabs with stripes.
type Stripe struct {
	Start int `json:"start"`
	End   int `json:"end"`
	Step  int `json:"step"`
}

func (s Stripe) contains(cand int) bool {
	return cand >= s.Start && cand < s.End && (cand-s.Start)%s.Step == 0
}

// size returns how many candidates the stripe selects.
func (s Stripe) size() int {
	if s.End <= s.Start {
		return 0
	}
	return ceilDiv(s.End-s.Start, s.Step)
}

// Plan describes one walkable selection of the base grid's candidates:
// either a sub-grid (exactly NumAxes windows, one per axis, odometer
// order) or a set of candidate-index stripes. Plans are pure data —
// serializable, comparable against any candidate index — which is what
// lets a checkpoint carry the full stage history and a resumed search
// re-derive "already visited" without materializing a seen-set.
type Plan struct {
	Windows []Window `json:"windows,omitempty"`
	Stripes []Stripe `json:"stripes,omitempty"`
}

// Contains reports whether the plan selects the candidate with global
// index cand and per-axis indexes idx (= Decompose(cand, dims) — the
// caller decomposes once and probes many plans).
func (p Plan) Contains(cand int, idx [NumAxes]int) bool {
	if p.Windows != nil {
		for a := 0; a < NumAxes && a < len(p.Windows); a++ {
			if !p.Windows[a].contains(idx[a]) {
				return false
			}
		}
		return true
	}
	for _, s := range p.Stripes {
		if s.contains(cand) {
			return true
		}
	}
	return false
}

// Size returns how many candidates the plan selects, before any dedup
// against other plans (stripes of one plan never overlap by
// construction; see the planner).
func (p Plan) Size() int {
	if p.Windows != nil {
		n := 1
		for _, w := range p.Windows {
			n *= w.Count
		}
		return n
	}
	n := 0
	for _, s := range p.Stripes {
		n += s.size()
	}
	return n
}

// validate checks the plan's geometry against the axis dims.
func (p Plan) validate(dims [NumAxes]int, size int) error {
	if (p.Windows == nil) == (p.Stripes == nil) {
		return fmt.Errorf("search: plan must have exactly one of windows or stripes")
	}
	if p.Windows != nil {
		if len(p.Windows) != NumAxes {
			return fmt.Errorf("search: plan has %d windows, want %d", len(p.Windows), NumAxes)
		}
		for a, w := range p.Windows {
			if w.Stride < 1 || w.Count < 1 || w.Start < 0 || w.Start >= dims[a] ||
				w.Start+(w.Count-1)*w.Stride >= dims[a] {
				return fmt.Errorf("search: axis %d window %+v outside its %d values", a, w, dims[a])
			}
		}
		return nil
	}
	for _, s := range p.Stripes {
		if s.Step < 1 || s.Start < 0 || s.End <= s.Start || s.End > size {
			return fmt.Errorf("search: stripe %+v outside the %d-candidate space", s, size)
		}
	}
	return nil
}

// Stage is one round of the search: the plans walked together, plus
// the admission bound frozen when the stage was planned. The bound is
// stored rather than recomputed so a resumed stage prunes exactly the
// candidates the uninterrupted run would have — a mid-stage incumbent
// must not retroactively tighten the stage's own pruning.
type Stage struct {
	Plans []Plan `json:"plans"`
	// HasBound/Bound carry the K-th-best cost frozen at stage start;
	// candidates whose lower bound exceeds it are skipped.
	HasBound bool    `json:"has_bound,omitempty"`
	Bound    float64 `json:"bound,omitempty"`
	// Running marks the exhaustive-exact stage: the bound is read live
	// from the top-K selector as the (serial) walk tightens it, instead
	// of being frozen here.
	Running bool `json:"running,omitempty"`
}

// Size returns the stage's planned candidate count before dedup.
func (st Stage) Size() int {
	n := 0
	for _, p := range st.Plans {
		n += p.Size()
	}
	return n
}
