module chipletactuary

go 1.24
