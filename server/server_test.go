package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"chipletactuary"
	"chipletactuary/server"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files from current output")

// newTestServer builds a server on a fresh session plus an httptest
// front end.
func newTestServer(t *testing.T, sessOpts []actuary.Option, srvOpts ...server.Option) (*server.Server, *httptest.Server) {
	t.Helper()
	session, err := actuary.NewSession(sessOpts...)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(session, srvOpts...)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestEvaluateEndpointMatchesLocalSession(t *testing.T) {
	_, ts := newTestServer(t, nil)
	reqs := []actuary.Request{
		{ID: "soc", Question: actuary.QuestionTotalCost,
			System: actuary.Monolithic("big", "5nm", 800, 2e6)},
		{ID: "opt", Question: actuary.QuestionOptimalChipletCount, Node: "7nm",
			ModuleAreaMM2: 700, MaxK: 4, Scheme: actuary.MCM,
			D2D: actuary.D2DFraction(0.10), Quantity: 2e6},
		{ID: "bad", Question: actuary.QuestionTotalCost,
			System: actuary.Monolithic("x", "2nm", 100, 1e6)},
	}
	body, err := json.Marshal(reqs)
	if err != nil {
		t.Fatal(err)
	}
	resp := postJSON(t, ts.URL+"/v1/evaluate", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("HTTP %d: %s", resp.StatusCode, data)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	got, err := actuary.DecodeResults(data)
	if err != nil {
		t.Fatal(err)
	}

	local, err := actuary.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	want := local.Evaluate(context.Background(), reqs)
	if len(got) != len(want) {
		t.Fatalf("result count %d, want %d", len(got), len(want))
	}
	for i := range want {
		wj, err := json.Marshal(want[i])
		if err != nil {
			t.Fatal(err)
		}
		gj, err := json.Marshal(got[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wj, gj) {
			t.Errorf("result %d differs:\nremote: %s\n local: %s", i, gj, wj)
		}
	}
	if got[2].Err == nil {
		t.Fatal("bad request should fail per-request")
	}
	if ae, ok := actuary.AsError(got[2].Err); !ok || ae.Code != actuary.ErrUnknownNode {
		t.Errorf("bad request error = %v, want unknown-node", got[2].Err)
	}
}

// TestStreamEndpointMatchesScenarioCLI is the end-to-end acceptance
// check: a scenario JSON posted to /v1/stream must yield byte-identical
// wire results (modulo ordering) to evaluating the same file locally —
// the exact path cmd/actuary -scenario takes (LoadScenarioConfig →
// Requests → Session.Evaluate) — and the stream must leave nonzero
// back-pressure samples in Session.Metrics.
func TestStreamEndpointMatchesScenarioCLI(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	scenario, err := os.ReadFile(filepath.Join("testdata", "scenario.json"))
	if err != nil {
		t.Fatal(err)
	}
	resp := postJSON(t, ts.URL+"/v1/stream", scenario)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("HTTP %d: %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	streamed := strings.Split(strings.TrimSpace(string(data)), "\n")

	// The CLI path: load the same file, materialize its requests,
	// evaluate on a local session, marshal each result to the wire.
	cfg, err := actuary.LoadScenarioConfig(filepath.Join("testdata", "scenario.json"))
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := cfg.Requests()
	if err != nil {
		t.Fatal(err)
	}
	local, err := actuary.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	results := local.Evaluate(context.Background(), reqs)
	want := make([]string, len(results))
	for i, r := range results {
		line, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = string(line)
	}
	if len(streamed) != len(want) {
		t.Fatalf("streamed %d lines, CLI path yields %d results", len(streamed), len(want))
	}
	sort.Strings(streamed)
	sort.Strings(want)
	for i := range want {
		if streamed[i] != want[i] {
			t.Errorf("stream and CLI results diverge:\nstream: %s\n   cli: %s", streamed[i], want[i])
		}
	}

	// Back-pressure instrumentation must have observed the stream.
	m := srv.Session().Metrics()
	if m.QueueDepthSamples == 0 || m.QueueDepthMax < 1 || m.MeanQueueDepth() <= 0 {
		t.Errorf("no queue-depth samples recorded: %+v", m)
	}
	if m.Utilization() <= 0 {
		t.Errorf("utilization = %v, want > 0 (busy %v, lifetime %v)",
			m.Utilization(), m.WorkerBusy, m.WorkerTime)
	}
	if m.Requests() != int64(len(want)) {
		t.Errorf("metrics saw %d requests, want %d", m.Requests(), len(want))
	}
}

// TestStreamGoldenFraming pins the NDJSON framing: one worker and an
// in-flight bound of one make emission order deterministic (generation
// order), so the whole response is reproducible byte for byte.
func TestStreamGoldenFraming(t *testing.T) {
	_, ts := newTestServer(t,
		[]actuary.Option{actuary.WithWorkers(1)}, server.WithInFlight(1))
	scenario, err := os.ReadFile(filepath.Join("testdata", "golden-scenario.json"))
	if err != nil {
		t.Fatal(err)
	}
	resp := postJSON(t, ts.URL+"/v1/stream", scenario)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("HTTP %d: %s", resp.StatusCode, data)
	}
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "stream.golden")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("NDJSON framing drifted from golden file:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestQuestionsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/v1/questions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var infos []actuary.QuestionInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(actuary.Questions()) {
		t.Errorf("%d questions advertised, want %d", len(infos), len(actuary.Questions()))
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), `"ok"`) {
		t.Errorf("healthz: HTTP %d %s", resp.StatusCode, data)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, nil)
	// Drive one batch so per-question series exist.
	body, _ := json.Marshal([]actuary.Request{{Question: actuary.QuestionTotalCost,
		System: actuary.Monolithic("m", "7nm", 400, 1e6)}})
	postJSON(t, ts.URL+"/v1/evaluate", body).Body.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	text := string(data)
	for _, series := range []string{
		"actuary_streams_started_total 1",
		"actuary_queue_depth_max 1",
		"actuary_worker_utilization",
		`actuary_requests_total{question="total-cost"} 1`,
		"actuary_kgd_cache_misses_total",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("metrics output lacks %q:\n%s", series, text)
		}
	}
}

func TestTransportErrors(t *testing.T) {
	_, ts := newTestServer(t, nil, server.WithMaxBodyBytes(256))

	resp := postJSON(t, ts.URL+"/v1/evaluate", []byte(`{not json`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: HTTP %d, want 400", resp.StatusCode)
	}
	var eb struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error.Code != "invalid-config" {
		t.Errorf("error body = %+v (%v), want invalid-config", eb, err)
	}
	resp.Body.Close()

	resp = postJSON(t, ts.URL+"/v1/stream", []byte(`{"version":2,"name":"empty"}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty scenario: HTTP %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	resp = postJSON(t, ts.URL+"/v1/evaluate", bytes.Repeat([]byte(" "), 512))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: HTTP %d, want 413", resp.StatusCode)
	}
	resp.Body.Close()

	getResp, err := http.Get(ts.URL + "/v1/evaluate")
	if err != nil {
		t.Fatal(err)
	}
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET on evaluate: HTTP %d, want 405", getResp.StatusCode)
	}
	getResp.Body.Close()
}

// TestStreamClientDisconnect verifies an abandoned stream drains
// without wedging the session: a canceled request context stops
// generation and later streams still run.
func TestStreamClientDisconnect(t *testing.T) {
	srv, ts := newTestServer(t, []actuary.Option{actuary.WithWorkers(2)}, server.WithInFlight(2))
	big, err := json.Marshal(actuary.ScenarioConfig{
		Version: 2, Name: "big", Questions: []string{"total-cost"},
		Sweeps: []actuary.SweepConfig{{
			Name: "wide", Node: "7nm", Scheme: "MCM", D2DFraction: 0.10, Quantity: 2e6,
			AreaRange:  &actuary.AreaRangeConfig{LoMM2: 100, HiMM2: 800, StepMM2: 1},
			CountRange: &actuary.CountRangeConfig{Lo: 1, Hi: 8},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/stream", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read a few lines, then walk away.
	buf := make([]byte, 4096)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatalf("first read: %v", err)
	}
	cancel()
	resp.Body.Close()

	// The session must still serve a fresh batch afterwards.
	results := srv.Session().Evaluate(context.Background(), []actuary.Request{{
		Question: actuary.QuestionTotalCost, System: actuary.Monolithic("m", "7nm", 300, 1e6)}})
	if results[0].Err != nil {
		t.Fatalf("session wedged after disconnect: %v", results[0].Err)
	}
}

func TestWithInFlightBoundsStream(t *testing.T) {
	_, ts := newTestServer(t, []actuary.Option{actuary.WithWorkers(2)}, server.WithInFlight(1))
	scenario, err := os.ReadFile(filepath.Join("testdata", "scenario.json"))
	if err != nil {
		t.Fatal(err)
	}
	resp := postJSON(t, ts.URL+"/v1/stream", scenario)
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	for _, line := range lines {
		var res actuary.Result
		if err := json.Unmarshal([]byte(line), &res); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
	}
	if len(lines) < 2 {
		t.Fatalf("expected several results, got %d", len(lines))
	}
}

// TestStreamEndpointHonorsShardSpec posts the same scenario once
// unsharded and once as two shards: the shard streams must partition
// the per-point results exactly (by ID) and each carry their own
// shard-stamped sweep-best answer that merges to the whole.
func TestStreamEndpointHonorsShardSpec(t *testing.T) {
	_, ts := newTestServer(t, nil)
	scenario := map[string]any{
		"version": 2, "name": "shards",
		"questions": []string{"total-cost", "sweep-best"},
		"sweeps": []map[string]any{{
			"name": "g", "nodes": []string{"5nm", "7nm"}, "scheme": "MCM",
			"quantity": 1e6, "areas_mm2": []float64{300, 500}, "counts": []int{1, 2, 3},
			"d2d_fraction": 0.10, "top_k": 3,
		}},
	}
	drainIDs := func(extra map[string]any) (map[string]bool, []actuary.Result) {
		doc := map[string]any{}
		for k, v := range scenario {
			doc[k] = v
		}
		for k, v := range extra {
			doc[k] = v
		}
		body, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		resp := postJSON(t, ts.URL+"/v1/stream", body)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			data, _ := io.ReadAll(resp.Body)
			t.Fatalf("HTTP %d: %s", resp.StatusCode, data)
		}
		ids := make(map[string]bool)
		var sweepBests []actuary.Result
		dec := json.NewDecoder(resp.Body)
		for {
			var r actuary.Result
			if err := dec.Decode(&r); err != nil {
				break
			}
			if r.Err != nil {
				t.Fatalf("result %q failed: %v", r.ID, r.Err)
			}
			if r.SweepBest != nil {
				sweepBests = append(sweepBests, r)
				continue
			}
			if ids[r.ID] {
				t.Fatalf("duplicate streamed ID %q", r.ID)
			}
			ids[r.ID] = true
		}
		return ids, sweepBests
	}

	wholeIDs, wholeBest := drainIDs(nil)
	if len(wholeBest) != 1 {
		t.Fatalf("unsharded stream answered sweep-best %d times", len(wholeBest))
	}
	union := make(map[string]int)
	merger := actuary.NewSweepBestMerger(3)
	for i := 0; i < 2; i++ {
		ids, bests := drainIDs(map[string]any{"shard_index": i, "shard_count": 2})
		for id := range ids {
			union[id]++
		}
		if len(bests) != 1 {
			t.Fatalf("shard %d answered sweep-best %d times", i, len(bests))
		}
		merger.Add(bests[0].SweepBest)
	}
	if len(union) != len(wholeIDs) {
		t.Fatalf("shard union has %d per-point results, unsharded %d", len(union), len(wholeIDs))
	}
	for id, c := range union {
		if c != 1 || !wholeIDs[id] {
			t.Errorf("per-point result %q owned by %d shards", id, c)
		}
	}
	merged, err := merger.Result("g")
	if err != nil {
		t.Fatal(err)
	}
	want := wholeBest[0].SweepBest
	if len(merged.Top) != len(want.Top) {
		t.Fatalf("merged top has %d points, want %d", len(merged.Top), len(want.Top))
	}
	for i := range want.Top {
		if merged.Top[i].ID != want.Top[i].ID || merged.Top[i].Total.Total() != want.Top[i].Total.Total() {
			t.Errorf("merged top[%d] = %q, want %q", i, merged.Top[i].ID, want.Top[i].ID)
		}
	}
	if merged.Summary.Count != want.Summary.Count {
		t.Errorf("merged summary count %d, want %d", merged.Summary.Count, want.Summary.Count)
	}

	// A malformed shard spec is rejected at the transport boundary.
	body, _ := json.Marshal(map[string]any{
		"version": 2, "name": "bad", "shard_index": 2, "shard_count": 2,
		"sweeps": scenario["sweeps"],
	})
	resp := postJSON(t, ts.URL+"/v1/stream", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid shard spec got HTTP %d, want 400", resp.StatusCode)
	}
}

// TestStreamEndpointResume is the daemon-side acceptance test of the
// resume protocol: a scenario asking resumable delivery streams in
// source-index order, and a second request resuming from line K
// continues with exactly the lines the full response had after K —
// the NDJSON concatenation is byte-identical to the uninterrupted
// response.
func TestStreamEndpointResume(t *testing.T) {
	_, ts := newTestServer(t, []actuary.Option{actuary.WithWorkers(3)})
	cfg := actuary.ScenarioConfig{
		Name:      "resume",
		Questions: []string{"total-cost"},
		Sweeps: []actuary.SweepConfig{{
			Name: "sw", Nodes: []string{"5nm", "7nm"}, Scheme: "MCM", D2DFraction: 0.10,
			Quantity: 1_000_000, AreasMM2: []float64{200, 400, 600}, Counts: []int{1, 2, 3},
		}},
		Resume: &actuary.StreamResume{NextIndex: 0},
	}
	lines := func(next int) []string {
		t.Helper()
		cfg.Resume = &actuary.StreamResume{NextIndex: next}
		body, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		resp := postJSON(t, ts.URL+"/v1/stream", body)
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("HTTP %d: %s", resp.StatusCode, data)
		}
		return strings.Split(strings.TrimSpace(string(data)), "\n")
	}
	full := lines(0)
	if len(full) < 4 {
		t.Fatalf("scenario streams only %d lines; the resume split needs more", len(full))
	}
	// Ordered delivery: line i is result index i.
	for i, line := range full {
		var r actuary.Result
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if r.Index != i {
			t.Fatalf("line %d carries index %d — resumable streams must be ordered", i, r.Index)
		}
	}
	cut := len(full) / 2
	resumed := lines(cut)
	combined := append(append([]string(nil), full[:cut]...), resumed...)
	if strings.Join(combined, "\n") != strings.Join(full, "\n") {
		t.Fatalf("resumed stream diverges:\nfull   : %d lines\nresumed: %d lines after cut %d",
			len(full), len(resumed), cut)
	}
	// Resuming at the very end yields an empty, well-formed response.
	if end := lines(len(full)); len(end) != 1 || end[0] != "" {
		t.Fatalf("resume at the end streamed %q, want an empty body", end)
	}

	// A negative resume index is a config error, not a silent fresh run.
	cfg.Resume = &actuary.StreamResume{NextIndex: -1}
	body, _ := json.Marshal(cfg)
	resp := postJSON(t, ts.URL+"/v1/stream", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative resume index: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestStreamNDJSONSlabPointIdentity checks the dispatch-mode
// equivalence on the wire: an ordered /v1/stream response (which rides
// slab dispatch — scenario sources implement SlabSource) must be
// byte-identical, line for line, to the same scenario streamed locally
// with slab dispatch forced off, across resume points.
func TestStreamNDJSONSlabPointIdentity(t *testing.T) {
	_, ts := newTestServer(t, []actuary.Option{actuary.WithWorkers(3)})
	cfg := actuary.ScenarioConfig{
		Name:      "slab-identity",
		Questions: []string{"total-cost", "re"},
		Sweeps: []actuary.SweepConfig{{
			Name: "sw", Nodes: []string{"5nm", "7nm"}, Scheme: "MCM", D2DFraction: 0.10,
			Quantity: 1_000_000, AreasMM2: []float64{200, 400, 600, 750}, Counts: []int{1, 2, 3},
		}},
	}
	for _, next := range []int{0, 5} {
		cfg.Resume = &actuary.StreamResume{NextIndex: next}
		body, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		resp := postJSON(t, ts.URL+"/v1/stream", body)
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("HTTP %d: %s", resp.StatusCode, data)
		}
		streamed := strings.Split(strings.TrimSpace(string(data)), "\n")

		// Point path: same scenario on a fresh local session, slab
		// dispatch forced off, results marshaled like the handler does.
		src, err := cfg.Source()
		if err != nil {
			t.Fatal(err)
		}
		local, err := actuary.NewSession(actuary.WithWorkers(3))
		if err != nil {
			t.Fatal(err)
		}
		ch, err := local.Stream(context.Background(), src,
			actuary.StreamOrdered(), actuary.StreamResumeAt(next), actuary.StreamSlabSize(1))
		if err != nil {
			t.Fatal(err)
		}
		var want []string
		for r := range ch {
			line, err := json.Marshal(r)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, string(line))
		}
		if len(streamed) != len(want) {
			t.Fatalf("resume %d: streamed %d lines, point path yields %d", next, len(streamed), len(want))
		}
		for i := range want {
			if streamed[i] != want[i] {
				t.Fatalf("resume %d line %d diverges:\nslab:  %s\npoint: %s", next, i, streamed[i], want[i])
			}
		}
	}
}
