// Package server implements actuaryd's HTTP face over the wire
// protocol defined in the root package: batch evaluation, scenario
// streaming with bounded back-pressure, question discovery, health
// and metrics. The package is transport glue only — every evaluation
// flows through an ordinary *actuary.Session, so a server process
// behaves exactly like an in-process caller of the library.
//
// Endpoints:
//
//	POST /v1/evaluate   JSON array of wire Requests in, array of Results out
//	POST /v1/stream     scenario JSON (ScenarioConfig) in, NDJSON Results out
//	GET  /v1/questions  the evaluation API, self-described
//	GET  /healthz       liveness
//	GET  /metrics       Prometheus text: back-pressure + cache counters
//	GET  /v1/metricz    the same counters as one canonical-JSON snapshot
//
// /v1/stream accepts exactly the scenario files cmd/actuary -scenario
// reads (ReadScenarioConfig), compiled through ScenarioConfig.Source
// into a lazy request stream: the sweep grids are never materialized,
// and the in-flight bound plus the client's read pace are the only
// buffering between generation and the socket. A scenario "resume"
// field switches the response to index-ordered delivery from the
// given position, so a client that lost its connection can continue
// the NDJSON from the last line it durably received.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime/pprof"
	"sort"
	"strings"

	"chipletactuary"
)

// DefaultMaxBodyBytes bounds request bodies (32 MiB — far beyond any
// reasonable scenario, small enough to shed abuse).
const DefaultMaxBodyBytes = 32 << 20

// Option configures a Server.
type Option func(*Server)

// WithInFlight bounds how many requests a /v1/stream response may
// have queued or evaluating ahead of the client's read position (see
// actuary.StreamInFlight). The default is the session's own default,
// twice the worker count.
func WithInFlight(n int) Option {
	return func(s *Server) { s.inFlight = n }
}

// WithMaxBodyBytes overrides the request body limit.
func WithMaxBodyBytes(n int64) Option {
	return func(s *Server) { s.maxBody = n }
}

// Server serves the wire protocol over one shared Session.
type Server struct {
	session  *actuary.Session
	inFlight int
	maxBody  int64
	mux      *http.ServeMux
}

// New builds a Server around an existing Session. The Session is
// shared: its worker pool, KGD cache and metrics serve every
// connection.
func New(session *actuary.Session, opts ...Option) *Server {
	s := &Server{session: session, maxBody: DefaultMaxBodyBytes}
	for _, opt := range opts {
		opt(s)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/evaluate", s.handleEvaluate)
	mux.HandleFunc("POST /v1/stream", s.handleStream)
	mux.HandleFunc("GET /v1/questions", s.handleQuestions)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/metricz", s.handleMetricz)
	s.mux = mux
	return s
}

// Session returns the session the server evaluates on.
func (s *Server) Session() *actuary.Session { return s.session }

// Handler returns the HTTP handler serving every endpoint.
func (s *Server) Handler() http.Handler { return s.mux }

// writeError emits an actuary.ErrorBody — the wire shape of a
// transport-level failure (malformed body, oversized payload, a
// scenario that does not compile) — with the given status. Evaluation
// failures never take this path: they travel per-request inside
// Result.error with HTTP 200, because one bad request must not fail
// its batch.
func writeError(w http.ResponseWriter, status int, code actuary.ErrorCode, msg string) {
	body := actuary.ErrorBody{Error: actuary.ErrorBodyDetail{Code: code.String(), Message: msg}}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

// readBody drains the request body under the configured limit.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		status := http.StatusBadRequest
		if _, ok := err.(*http.MaxBytesError); ok {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, actuary.ErrInvalidConfig, fmt.Sprintf("reading request body: %v", err))
		return nil, false
	}
	return data, true
}

// handleEvaluate answers POST /v1/evaluate: a JSON array of wire
// requests evaluated as one batch, results in input order.
func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	data, ok := s.readBody(w, r)
	if !ok {
		return
	}
	reqs, err := actuary.DecodeRequests(data)
	if err != nil {
		writeError(w, http.StatusBadRequest, actuary.ErrInvalidConfig, err.Error())
		return
	}
	results := s.session.Evaluate(r.Context(), reqs)
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(results); err != nil {
		// Headers are gone; nothing to do but drop the connection.
		return
	}
}

// handleStream answers POST /v1/stream: the body is a scenario
// document (the same schema cmd/actuary -scenario reads), compiled to
// a lazy request source and streamed back as NDJSON — one wire Result
// per line, in completion order. Generation is demand-driven: at most
// the in-flight bound is ever queued or evaluating ahead of the
// socket, so a slow client throttles the sweep instead of ballooning
// server memory.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	data, ok := s.readBody(w, r)
	if !ok {
		return
	}
	cfg, err := actuary.ReadScenarioConfig(bytes.NewReader(data))
	if err != nil {
		writeError(w, http.StatusBadRequest, actuary.ErrInvalidConfig, err.Error())
		return
	}
	// A scenario carrying a "resume" field asks for resumable delivery:
	// results come back in source-index order starting at next_index,
	// with the skipped prefix regenerated but never re-evaluated — the
	// NDJSON continues exactly where the interrupted response stopped.
	next, ordered, err := cfg.ResumeIndex()
	if err != nil {
		writeError(w, http.StatusBadRequest, actuary.ErrInvalidConfig, err.Error())
		return
	}
	src, err := cfg.Source()
	if err != nil {
		writeError(w, http.StatusBadRequest, actuary.ErrInvalidConfig, err.Error())
		return
	}
	spec := actuary.StreamSpec{InFlight: s.inFlight}
	if ordered {
		// In-stream ordering credit-limits dispatch, so a slow head
		// request stalls generation instead of ballooning a reorder
		// buffer — the back-pressure bound survives resumable delivery.
		spec.ResumeAt = next
		spec.Ordered = true
	}
	// r.Context() is canceled when the client disconnects, which stops
	// generation and drains the workers — an abandoned stream cannot
	// leak a goroutine.
	ch, err := s.session.Stream(r.Context(), src, spec.Options()...)
	if err != nil {
		writeError(w, http.StatusBadRequest, actuary.ErrInvalidConfig, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	// One reused line buffer + the hand-rolled canonical marshaler keep
	// the per-result encode allocation-free; AppendResultLine's output
	// is byte-identical to what json.NewEncoder(w).Encode wrote here
	// before (proven by the root package's wire_fast tests). The pprof
	// label splits this handler's CPU from the session's evaluate and
	// deliver stages in profiles.
	pprof.Do(r.Context(), pprof.Labels("stage", "marshal"), func(context.Context) {
		var buf []byte
		for res := range ch {
			line, err := actuary.AppendResultLine(buf[:0], res)
			if err != nil {
				// A payload JSON cannot represent; nothing useful can
				// follow it on this connection. Drain so the stream's
				// workers retire cleanly.
				for range ch {
				}
				return
			}
			buf = line
			if _, err := w.Write(line); err != nil {
				// Client went away; keep draining so the stream's
				// workers retire cleanly (the canceled context stops
				// generation).
				for range ch {
				}
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	})
}

// handleQuestions answers GET /v1/questions with the evaluation API's
// self-description.
func (s *Server) handleQuestions(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(actuary.Questions())
}

// handleHealthz answers GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = io.WriteString(w, "{\"status\":\"ok\"}\n")
}

// handleMetrics answers GET /metrics in Prometheus text exposition
// format: the session's back-pressure counters (queue depth,
// in-flight, worker utilization, per-question latency) plus the KGD
// cache counters.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	m := s.session.Metrics()
	cache := s.session.CacheStats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")

	var b strings.Builder
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
	}
	counter("actuary_streams_started_total", "Streams (and batches) started.", float64(m.StreamsStarted))
	counter("actuary_streams_completed_total", "Streams (and batches) completed.", float64(m.StreamsCompleted))
	gauge("actuary_queue_depth", "Requests waiting for a worker.", float64(m.QueueDepth))
	gauge("actuary_queue_depth_max", "High-water mark of the job queue.", float64(m.QueueDepthMax))
	gauge("actuary_queue_depth_mean", "Mean queue depth sampled at enqueue.", m.MeanQueueDepth())
	gauge("actuary_in_flight", "Requests currently being evaluated.", float64(m.InFlight))
	gauge("actuary_in_flight_max", "High-water mark of concurrent evaluations.", float64(m.InFlightMax))
	counter("actuary_worker_busy_seconds_total", "Worker time spent evaluating.", m.WorkerBusy.Seconds())
	counter("actuary_worker_seconds_total", "Total worker lifetime.", m.WorkerTime.Seconds())
	gauge("actuary_worker_utilization", "Busy share of worker lifetime, 0-1.", m.Utilization())
	gauge("actuary_workers", "Worker pool target width.", float64(s.session.Workers()))

	if len(m.PerQuestion) > 0 {
		sorted := append([]actuary.QuestionMetrics(nil), m.PerQuestion...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Question < sorted[j].Question })
		fmt.Fprintf(&b, "# HELP actuary_requests_total Requests evaluated, by question.\n# TYPE actuary_requests_total counter\n")
		for _, q := range sorted {
			fmt.Fprintf(&b, "actuary_requests_total{question=%q} %d\n", q.Question.String(), q.Count)
		}
		fmt.Fprintf(&b, "# HELP actuary_request_failures_total Failed requests, by question.\n# TYPE actuary_request_failures_total counter\n")
		for _, q := range sorted {
			fmt.Fprintf(&b, "actuary_request_failures_total{question=%q} %d\n", q.Question.String(), q.Failures)
		}
		fmt.Fprintf(&b, "# HELP actuary_request_seconds_total Evaluation time, by question.\n# TYPE actuary_request_seconds_total counter\n")
		for _, q := range sorted {
			fmt.Fprintf(&b, "actuary_request_seconds_total{question=%q} %g\n", q.Question.String(), q.TotalLatency.Seconds())
		}
		fmt.Fprintf(&b, "# HELP actuary_request_seconds_max Slowest evaluation, by question.\n# TYPE actuary_request_seconds_max gauge\n")
		for _, q := range sorted {
			fmt.Fprintf(&b, "actuary_request_seconds_max{question=%q} %g\n", q.Question.String(), q.MaxLatency.Seconds())
		}
	}

	counter("actuary_kgd_cache_hits_total", "Shared die-cost cache hits.", float64(cache.Hits))
	counter("actuary_kgd_cache_misses_total", "Shared die-cost cache misses.", float64(cache.Misses))
	gauge("actuary_kgd_cache_entries", "Shared die-cost cache entries.", float64(cache.Entries))
	_, _ = io.WriteString(w, b.String())
}

// handleMetricz answers GET /v1/metricz: the counters /metrics
// exposes, as one strict-decodable canonical-JSON snapshot
// (actuary.MetricsSnapshot) — the preferred probe of fleet.Monitor,
// which falls back to parsing the Prometheus text against daemons
// predating this endpoint.
func (s *Server) handleMetricz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(actuary.MetricsSnapshotNow(s.session))
}
