package server_test

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	actuary "chipletactuary"
)

// TestMetriczEndpoint: GET /v1/metricz serves the session's metrics
// as one strict canonical-JSON document — the structured twin of the
// Prometheus text endpoint, and what fleet.Monitor probes first.
func TestMetriczEndpoint(t *testing.T) {
	_, ts := newTestServer(t, []actuary.Option{actuary.WithWorkers(3)})
	body, _ := json.Marshal([]actuary.Request{{Question: actuary.QuestionTotalCost,
		System: actuary.Monolithic("m", "7nm", 400, 1e6)}})
	postJSON(t, ts.URL+"/v1/evaluate", body).Body.Close()

	resp, err := http.Get(ts.URL + "/v1/metricz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metricz: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("Content-Type = %q, want JSON", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var snap actuary.MetricsSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metricz payload does not strict-decode: %v\n%s", err, data)
	}
	if snap.Workers != 3 {
		t.Errorf("workers = %d, want 3", snap.Workers)
	}
	if snap.Session.Requests() != 1 {
		t.Errorf("requests = %d, want 1", snap.Session.Requests())
	}
	if snap.Session.StreamsStarted != 1 || snap.Session.StreamsCompleted != 1 {
		t.Errorf("streams = %d/%d started/completed, want 1/1",
			snap.Session.StreamsStarted, snap.Session.StreamsCompleted)
	}
	if snap.Cache.Misses == 0 {
		t.Error("evaluation left no KGD cache traffic")
	}

	// The text endpoint and the snapshot must agree on worker width.
	textResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer textResp.Body.Close()
	text, _ := io.ReadAll(textResp.Body)
	if !strings.Contains(string(text), "actuary_workers 3") {
		t.Errorf("/metrics lacks actuary_workers 3:\n%s", text)
	}
}
