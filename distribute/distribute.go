// Package distribute fans one design-space sweep across many
// evaluation backends — in-process Sessions, remote actuaryd daemons,
// or a mix — and merges the per-shard aggregates back into the exact
// single-process answer.
//
// The Coordinator splits a sweep-best question into candidate-space
// shards (see actuary.Request's ShardIndex/ShardCount), dispatches one
// shard per backend through the client.Backend interface, and merges
// top-K, Pareto front, summary and pruning statistics as shards drain.
// Transport failures are retried on another backend (each backend
// tries a shard at most once, so retries are bounded by the backend
// count); deterministic evaluation failures are not retried — every
// backend would reproduce them. The determinism guarantee of the
// sharded pipeline means the shard count and the fan-out never change
// the answer: top-K and Pareto are byte-identical to the unsharded
// sweep, and the summary differs at most by floating-point
// reassociation in its Sum/Mean. Byte-identity assumes backends
// computing identical floats (same Go version and CPU architecture);
// across a heterogeneous fleet, last-ulp cost differences can resolve
// an exact tie differently.
//
// Long runs can be made durable: SweepBestCheckpointed snapshots the
// per-shard progress (a CoordinatorCheckpoint) every time a shard
// drains, and a coordinator restarted with that checkpoint merges the
// recorded answers and re-dispatches only the undrained shards — the
// shard spec is the checkpoint unit.
//
//	backends := []client.Backend{client.Local(session), remoteA, remoteB}
//	coord, err := distribute.New(backends)
//	best, err := coord.SweepBest(ctx, actuary.Request{
//	    Question: actuary.QuestionSweepBest, Grid: &grid, TopK: 5,
//	})
package distribute

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"chipletactuary"
	"chipletactuary/client"
)

// Option configures a Coordinator.
type Option func(*Coordinator)

// WithShards sets how many candidate-space shards a sweep is split
// into. The default is one per backend; more shards than backends
// makes reassignment after a backend failure cheaper (only the small
// lost shard is redone) at the cost of a little per-shard overhead.
// Values below 1 are raised to the backend count.
func WithShards(n int) Option {
	return func(c *Coordinator) { c.shards = n }
}

// Coordinator fans sweep-best questions across a fixed set of
// backends. It is stateless between calls and safe for concurrent use.
type Coordinator struct {
	backends []client.Backend
	shards   int
}

// New builds a Coordinator over the given backends. At least one is
// required; mixing client.Local sessions and remote daemons is fine —
// the determinism guarantee makes them interchangeable.
func New(backends []client.Backend, opts ...Option) (*Coordinator, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("distribute: coordinator needs at least one backend")
	}
	c := &Coordinator{backends: backends, shards: len(backends)}
	for _, opt := range opts {
		opt(c)
	}
	if c.shards < 1 {
		c.shards = len(backends)
	}
	return c, nil
}

// shardTask is one stripe of the sweep waiting for a backend. tried
// marks backends that failed it on transport, so reassignment never
// hands a shard back to the backend that just dropped it.
type shardTask struct {
	index int
	tried []bool
}

// scheduler hands shards to backend workers: a mutex-guarded pending
// list with a condition variable, so a worker that cannot take any
// remaining shard (it failed them all already) parks instead of
// spinning, and wakes when the situation changes.
type scheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []*shardTask
	done    int
	total   int
	failed  error  // first fatal failure; stops the run
	stop    func() // invoked once when failed is set; cancels in-flight work
}

// newScheduler builds the shard queue, skipping shards a resumed run
// already drained: those count as done from the start and are never
// handed to a backend.
func newScheduler(total int, drained func(int) bool) *scheduler {
	s := &scheduler{total: total}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < total; i++ {
		if drained != nil && drained(i) {
			s.done++
			continue
		}
		s.pending = append(s.pending, &shardTask{index: i, tried: nil})
	}
	return s
}

// next blocks until a shard is available for backend b, every shard is
// done, or the run failed. The boolean reports whether a task was
// handed out.
func (s *scheduler) next(b int) (*shardTask, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.failed != nil || s.done == s.total {
			return nil, false
		}
		for i, t := range s.pending {
			if b < len(t.tried) && t.tried[b] {
				continue
			}
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			return t, true
		}
		// Nothing this worker may take right now (empty pending, or it
		// already failed every pending shard): park until a requeue,
		// completion or failure changes the picture.
		s.cond.Wait()
	}
}

// complete marks one shard finished.
func (s *scheduler) complete() {
	s.mu.Lock()
	s.done++
	s.mu.Unlock()
	s.cond.Broadcast()
}

// requeue returns a shard after a transport failure on backend b,
// excluding b from its future assignments. When every backend has now
// failed the shard, the run fails with the last transport error.
func (s *scheduler) requeue(t *shardTask, b, backends int, cause error) {
	s.mu.Lock()
	for len(t.tried) < backends {
		t.tried = append(t.tried, false)
	}
	t.tried[b] = true
	exhausted := true
	for _, tried := range t.tried {
		if !tried {
			exhausted = false
			break
		}
	}
	var stop func()
	if exhausted {
		if s.failed == nil {
			s.failed = fmt.Errorf("distribute: shard %d failed on every backend: %w", t.index, cause)
			stop = s.stop
		}
	} else {
		s.pending = append(s.pending, t)
	}
	s.mu.Unlock()
	s.cond.Broadcast()
	if stop != nil {
		stop()
	}
}

// fail aborts the run with a fatal error (a deterministic evaluation
// failure, or a canceled context). A run whose every shard already
// completed cannot fail retroactively: the context watcher may observe
// cancellation in the gap after the last merge, and the fully-computed
// answer must win that race. (Fatal evaluation errors always arrive
// with their own shard incomplete, so the guard never masks one.)
func (s *scheduler) fail(err error) {
	var stop func()
	s.mu.Lock()
	if s.failed == nil && s.done < s.total {
		s.failed = err
		stop = s.stop
	}
	s.mu.Unlock()
	s.cond.Broadcast()
	if stop != nil {
		stop()
	}
}

// err returns the fatal failure, if any.
func (s *scheduler) err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failed
}

// SweepBest answers one sweep-best request by fanning its grid across
// the coordinator's backends: shard i of n is dispatched as the same
// request with the shard spec stamped on, and the partial answers
// merge — as shards drain — into exactly the answer a single
// unsharded evaluation would produce. The request must carry a Grid,
// ask QuestionSweepBest (the zero Question is promoted), and not carry
// a shard spec of its own.
//
// A backend that fails a shard on transport is excluded from that
// shard and the shard is reassigned, so the sweep survives backends
// dying mid-run as long as every shard completes somewhere. Evaluation
// failures (bad grid, unknown node) abort the run immediately — they
// are deterministic, and every backend would reproduce them.
func (c *Coordinator) SweepBest(ctx context.Context, req actuary.Request) (*actuary.SweepBest, error) {
	return c.SweepBestCheckpointed(ctx, req, nil, nil)
}

// SweepBestCheckpointed is SweepBest with per-shard durability: every
// time a shard drains, the run's progress — which shards completed,
// with their answers — is snapshotted into a CoordinatorCheckpoint
// and handed to save (persist it with actuary.SaveCheckpointFile). A
// coordinator that dies mid-run restarts with the last saved
// checkpoint as resume: the recorded answers merge immediately and
// only the undrained shards are re-dispatched, so completed work —
// possibly hours of it, spread over many hosts — is never re-walked.
// The shard spec is the checkpoint unit, which is also what makes the
// resumed answer exact: shard answers merge identically whether they
// came off a backend or out of a file.
//
// resume must carry this workload's fingerprint (SweepFingerprint of
// the request) and this coordinator's shard count; a mismatch is
// rejected rather than silently merging two different sweeps. Save
// calls are serialized and receive a snapshot that does not alias the
// run's state; a save error aborts the run.
func (c *Coordinator) SweepBestCheckpointed(ctx context.Context, req actuary.Request, resume *actuary.CoordinatorCheckpoint, save func(*actuary.CoordinatorCheckpoint) error) (*actuary.SweepBest, error) {
	if req.Question == 0 {
		req.Question = actuary.QuestionSweepBest
	}
	if req.Question != actuary.QuestionSweepBest {
		return nil, fmt.Errorf("distribute: SweepBest wants a sweep-best request, not %v", req.Question)
	}
	if req.Grid == nil {
		return nil, fmt.Errorf("distribute: sweep-best request needs a Grid")
	}
	if err := req.Grid.Validate(); err != nil {
		return nil, err
	}
	if req.ShardIndex != 0 || req.ShardCount != 0 {
		return nil, fmt.Errorf("distribute: request already carries shard %d of %d; the coordinator assigns shards",
			req.ShardIndex, req.ShardCount)
	}
	if ctx == nil {
		ctx = context.Background()
	}

	n := c.shards
	fingerprint := ""
	if resume != nil || save != nil {
		var err error
		if fingerprint, err = actuary.SweepFingerprint(req); err != nil {
			return nil, err
		}
	}
	merger := actuary.NewSweepBestMerger(req.TopK)
	drained := make(map[int]*actuary.SweepBest)
	if resume != nil {
		if resume.Fingerprint != fingerprint {
			return nil, fmt.Errorf("distribute: %w: checkpoint fingerprint %.12s does not match sweep grid %q (%.12s)",
				actuary.ErrCheckpointMismatch, resume.Fingerprint, req.Grid.Name, fingerprint)
		}
		if resume.Shards != n {
			return nil, fmt.Errorf("distribute: %w: checkpoint partitioned the sweep into %d shards, this coordinator into %d",
				actuary.ErrCheckpointMismatch, resume.Shards, n)
		}
		// Re-validate what the wire decoder would have: an in-memory
		// checkpoint handed straight to this method never passed
		// through UnmarshalJSON, and a duplicate or absurd entry
		// silently double-merged would corrupt the answer.
		if err := resume.Validate(); err != nil {
			return nil, fmt.Errorf("distribute: %w: %w", actuary.ErrCheckpointMismatch, err)
		}
		for _, sr := range resume.Completed {
			drained[sr.Shard] = sr.Best
			merger.Add(sr.Best)
		}
	}
	var mergeMu sync.Mutex
	// checkpoint snapshots the run's progress under mergeMu.
	checkpoint := func() *actuary.CoordinatorCheckpoint {
		cp := &actuary.CoordinatorCheckpoint{Fingerprint: fingerprint, Shards: n}
		shards := make([]int, 0, len(drained))
		for i := range drained {
			shards = append(shards, i)
		}
		sort.Ints(shards)
		for _, i := range shards {
			cp.Completed = append(cp.Completed, actuary.ShardResult{Shard: i, Best: drained[i]})
		}
		return cp
	}

	// A fatal failure cancels runCtx so in-flight shard walks on the
	// other backends stop at their next cancellation check instead of
	// computing answers nobody will merge.
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	sched := newScheduler(n, func(i int) bool { _, ok := drained[i]; return ok })
	sched.stop = cancelRun

	var wg sync.WaitGroup
	for b := range c.backends {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			for {
				task, ok := sched.next(b)
				if !ok {
					return
				}
				best, err := c.evaluateShard(runCtx, b, req, task.index, n)
				switch {
				case err == nil:
					mergeMu.Lock()
					merger.Add(best)
					drained[task.index] = best
					var saveErr error
					if save != nil {
						saveErr = save(checkpoint())
					}
					mergeMu.Unlock()
					if saveErr != nil {
						sched.fail(fmt.Errorf("distribute: saving coordinator checkpoint: %w", saveErr))
						return
					}
					sched.complete()
				case retryable(err):
					sched.requeue(task, b, len(c.backends), err)
				default:
					sched.fail(err)
				}
			}
		}(b)
	}

	// A canceled caller context must unblock workers parked in next().
	watch := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			sched.fail(ctx.Err())
		case <-watch:
		}
	}()
	wg.Wait()
	close(watch)

	if err := sched.err(); err != nil {
		return nil, err
	}
	return merger.Result(req.Grid.Name)
}

// evaluateShard runs one shard of the request on one backend as a
// single-member batch.
func (c *Coordinator) evaluateShard(ctx context.Context, b int, req actuary.Request, shard, count int) (*actuary.SweepBest, error) {
	sr := req
	sr.ShardIndex, sr.ShardCount = shard, count
	if sr.ID == "" {
		sr.ID = req.Grid.Name + "/" + actuary.QuestionSweepBest.String()
	}
	sr.ID = actuary.ShardID(sr.ID, shard, count)
	results, err := c.backends[b].Evaluate(ctx, []actuary.Request{sr})
	if err != nil {
		return nil, err
	}
	if len(results) != 1 {
		return nil, transportError(fmt.Errorf("distribute: backend returned %d results for a 1-request batch", len(results)))
	}
	if results[0].Err != nil {
		return nil, results[0].Err
	}
	if results[0].SweepBest == nil {
		return nil, transportError(fmt.Errorf("distribute: backend returned no sweep-best payload for %q", sr.ID))
	}
	return results[0].SweepBest, nil
}

// transportError classifies a malformed backend response as
// ErrTransport so it is retried elsewhere like any other broken
// transport.
func transportError(err error) error {
	return &actuary.Error{Code: actuary.ErrTransport, Index: -1, Question: -1, Err: err}
}

// retryable reports whether another backend might succeed where this
// one failed: transport failures are worth reassigning, evaluation
// failures and cancellations are not.
func retryable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if ae, ok := actuary.AsError(err); ok {
		return ae.Code == actuary.ErrTransport
	}
	// An error outside the taxonomy came from the transport layer, not
	// from an evaluator.
	return true
}

// SweepBestScenario answers the single sweep-best question of a
// scenario by fanning it across the backends — the scenario-file face
// of SweepBest, used by cmd/explore -backends. The scenario must
// compile to exactly one request, a sweep-best (one sweep, the
// "sweep-best" question, no explicit systems).
func (c *Coordinator) SweepBestScenario(ctx context.Context, cfg actuary.ScenarioConfig) (*actuary.SweepBest, error) {
	return c.SweepBestScenarioCheckpointed(ctx, cfg, nil, nil)
}

// SweepBestScenarioCheckpointed is SweepBestScenario with the
// per-shard durability of SweepBestCheckpointed — the scenario-file
// face of a resumable distributed run, used by cmd/explore when
// -backends and -checkpoint are combined.
func (c *Coordinator) SweepBestScenarioCheckpointed(ctx context.Context, cfg actuary.ScenarioConfig, resume *actuary.CoordinatorCheckpoint, save func(*actuary.CoordinatorCheckpoint) error) (*actuary.SweepBest, error) {
	if cfg.ShardIndex != 0 || cfg.ShardCount != 0 {
		return nil, fmt.Errorf("distribute: scenario already carries shard %d of %d; the coordinator assigns shards",
			cfg.ShardIndex, cfg.ShardCount)
	}
	reqs, err := cfg.Requests()
	if err != nil {
		return nil, err
	}
	if len(reqs) != 1 || reqs[0].Question != actuary.QuestionSweepBest {
		return nil, fmt.Errorf("distribute: scenario %q compiles to %d requests; SweepBestScenario wants exactly one sweep-best",
			cfg.Name, len(reqs))
	}
	return c.SweepBestCheckpointed(ctx, reqs[0], resume, save)
}
