// Package distribute fans one design-space sweep across many
// evaluation backends — in-process Sessions, remote actuaryd daemons,
// or a mix — and merges the per-shard aggregates back into the exact
// single-process answer.
//
// The Coordinator splits a sweep-best question into candidate-space
// shards (see actuary.Request's ShardIndex/ShardCount), dispatches one
// shard per backend through the client.Backend interface, and merges
// top-K, Pareto front, summary and pruning statistics as shards drain.
// Transport failures are retried on another backend (each backend
// tries a shard at most once, so retries are bounded by the backend
// count); deterministic evaluation failures are not retried — every
// backend would reproduce them. The determinism guarantee of the
// sharded pipeline means the shard count and the fan-out never change
// the answer: top-K and Pareto are byte-identical to the unsharded
// sweep, and the summary differs at most by floating-point
// reassociation in its Sum/Mean. Byte-identity assumes backends
// computing identical floats (same Go version and CPU architecture);
// across a heterogeneous fleet, last-ulp cost differences can resolve
// an exact tie differently.
//
// Long runs can be made durable: SweepBestCheckpointed snapshots the
// per-shard progress (a CoordinatorCheckpoint) every time a shard
// drains, and a coordinator restarted with that checkpoint merges the
// recorded answers and re-dispatches only the undrained shards — the
// shard spec is the checkpoint unit.
//
// Since the fleet package arrived, distribute is a thin veneer over
// fleet.Coordinator with the fleet behaviors switched off: a fixed
// membership list, no health monitor, and no speculative re-execution
// — a shard moves to another backend only after a completed transport
// failure, never on mere slowness. Callers who want health-aware
// scheduling, work stealing, elastic membership or speculation should
// use package fleet directly; existing distribute callers keep the
// exact semantics this package always had.
//
//	backends := []client.Backend{client.Local(session), remoteA, remoteB}
//	coord, err := distribute.New(backends)
//	best, err := coord.SweepBest(ctx, actuary.Request{
//	    Question: actuary.QuestionSweepBest, Grid: &grid, TopK: 5,
//	})
package distribute

import (
	"context"
	"fmt"

	"chipletactuary"
	"chipletactuary/client"
	"chipletactuary/fleet"
)

// Option configures a Coordinator.
type Option func(*Coordinator)

// WithShards sets how many candidate-space shards a sweep is split
// into. The default is one per backend; more shards than backends
// makes reassignment after a backend failure cheaper (only the small
// lost shard is redone) at the cost of a little per-shard overhead.
// Values below 1 are raised to the backend count.
func WithShards(n int) Option {
	return func(c *Coordinator) { c.shards = n }
}

// Coordinator fans sweep-best questions across a fixed set of
// backends. It is stateless between calls and safe for concurrent use.
type Coordinator struct {
	fleet  *fleet.Coordinator
	stream *fleet.StreamCoordinator
	shards int
}

// New builds a Coordinator over the given backends. At least one is
// required; mixing client.Local sessions and remote daemons is fine —
// the determinism guarantee makes them interchangeable.
func New(backends []client.Backend, opts ...Option) (*Coordinator, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("distribute: coordinator needs at least one backend")
	}
	c := &Coordinator{shards: len(backends)}
	for _, opt := range opts {
		opt(c)
	}
	if c.shards < 1 {
		c.shards = len(backends)
	}
	reg := fleet.NewRegistry()
	for i, b := range backends {
		if b == nil {
			return nil, fmt.Errorf("distribute: backend %d is nil", i)
		}
		if err := reg.Add(fmt.Sprintf("backend-%d", i), b); err != nil {
			return nil, fmt.Errorf("distribute: %w", err)
		}
	}
	fc, err := fleet.New(reg, fleet.WithShards(c.shards), fleet.WithSpeculation(false))
	if err != nil {
		return nil, fmt.Errorf("distribute: %w", err)
	}
	sc, err := fleet.NewStream(reg, fleet.WithShards(c.shards), fleet.WithSpeculation(false))
	if err != nil {
		return nil, fmt.Errorf("distribute: %w", err)
	}
	c.fleet = fc
	c.stream = sc
	return c, nil
}

// Stream stripes one streamed scenario across the coordinator's
// backends and returns the merged, index-ordered result stream —
// byte-identical to streaming the unsharded scenario from a single
// backend. Distribute semantics apply: fixed membership, no
// speculation, a shard moves only after a completed transport
// failure (resuming from its stream watermark, so nothing is
// re-evaluated). Callers who want health-aware striping, elastic
// membership or checkpointed resumption should use
// fleet.StreamCoordinator directly.
func (c *Coordinator) Stream(ctx context.Context, cfg actuary.ScenarioConfig) (<-chan actuary.Result, error) {
	return c.stream.Stream(ctx, cfg)
}

// SweepBest answers one sweep-best request by fanning its grid across
// the coordinator's backends: shard i of n is dispatched as the same
// request with the shard spec stamped on, and the partial answers
// merge — as shards drain — into exactly the answer a single
// unsharded evaluation would produce. The request must carry a Grid,
// ask QuestionSweepBest (the zero Question is promoted), and not carry
// a shard spec of its own.
//
// A backend that fails a shard on transport is excluded from that
// shard and the shard is reassigned, so the sweep survives backends
// dying mid-run as long as every shard completes somewhere. Evaluation
// failures (bad grid, unknown node) abort the run immediately — they
// are deterministic, and every backend would reproduce them.
func (c *Coordinator) SweepBest(ctx context.Context, req actuary.Request) (*actuary.SweepBest, error) {
	return c.SweepBestCheckpointed(ctx, req, nil, nil)
}

// SweepBestCheckpointed is SweepBest with per-shard durability: every
// time a shard drains, the run's progress — which shards completed,
// with their answers — is snapshotted into a CoordinatorCheckpoint
// and handed to save (persist it with actuary.SaveCheckpointFile). A
// coordinator that dies mid-run restarts with the last saved
// checkpoint as resume: the recorded answers merge immediately and
// only the undrained shards are re-dispatched, so completed work —
// possibly hours of it, spread over many hosts — is never re-walked.
// The shard spec is the checkpoint unit, which is also what makes the
// resumed answer exact: shard answers merge identically whether they
// came off a backend or out of a file.
//
// resume must carry this workload's fingerprint (SweepFingerprint of
// the request) and this coordinator's shard count; a mismatch is
// rejected rather than silently merging two different sweeps. Save
// calls are serialized and receive a snapshot that does not alias the
// run's state; a save error aborts the run.
func (c *Coordinator) SweepBestCheckpointed(ctx context.Context, req actuary.Request, resume *actuary.CoordinatorCheckpoint, save func(*actuary.CoordinatorCheckpoint) error) (*actuary.SweepBest, error) {
	if req.Question == 0 {
		req.Question = actuary.QuestionSweepBest
	}
	if req.Question != actuary.QuestionSweepBest {
		return nil, fmt.Errorf("distribute: SweepBest wants a sweep-best request, not %v", req.Question)
	}
	if req.Grid == nil {
		return nil, fmt.Errorf("distribute: sweep-best request needs a Grid")
	}
	if req.ShardIndex != 0 || req.ShardCount != 0 {
		return nil, fmt.Errorf("distribute: request already carries shard %d of %d; the coordinator assigns shards",
			req.ShardIndex, req.ShardCount)
	}
	return c.fleet.SweepBestCheckpointed(ctx, req, resume, save)
}

// SweepBestScenario answers the single sweep-best question of a
// scenario by fanning it across the backends — the scenario-file face
// of SweepBest, used by cmd/explore -backends. The scenario must
// compile to exactly one request, a sweep-best (one sweep, the
// "sweep-best" question, no explicit systems).
func (c *Coordinator) SweepBestScenario(ctx context.Context, cfg actuary.ScenarioConfig) (*actuary.SweepBest, error) {
	return c.SweepBestScenarioCheckpointed(ctx, cfg, nil, nil)
}

// SweepBestScenarioCheckpointed is SweepBestScenario with the
// per-shard durability of SweepBestCheckpointed — the scenario-file
// face of a resumable distributed run, used by cmd/explore when
// -backends and -checkpoint are combined.
func (c *Coordinator) SweepBestScenarioCheckpointed(ctx context.Context, cfg actuary.ScenarioConfig, resume *actuary.CoordinatorCheckpoint, save func(*actuary.CoordinatorCheckpoint) error) (*actuary.SweepBest, error) {
	if cfg.ShardIndex != 0 || cfg.ShardCount != 0 {
		return nil, fmt.Errorf("distribute: scenario already carries shard %d of %d; the coordinator assigns shards",
			cfg.ShardIndex, cfg.ShardCount)
	}
	reqs, err := cfg.Requests()
	if err != nil {
		return nil, err
	}
	if len(reqs) != 1 || reqs[0].Question != actuary.QuestionSweepBest {
		return nil, fmt.Errorf("distribute: scenario %q compiles to %d requests; SweepBestScenario wants exactly one sweep-best",
			cfg.Name, len(reqs))
	}
	return c.SweepBestCheckpointed(ctx, reqs[0], resume, save)
}
