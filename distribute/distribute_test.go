package distribute

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"chipletactuary"
	"chipletactuary/client"
	"chipletactuary/server"
)

// testGrid exercises every accounting path: multi-scheme dedup of the
// k=1 twins, reticle pruning (860 mm² monolithic dies), and plain
// feasible points.
func testGrid() actuary.SweepGrid {
	return actuary.SweepGrid{
		Name:       "dist",
		Nodes:      []string{"5nm", "7nm"},
		Schemes:    []actuary.Scheme{actuary.MCM, actuary.TwoPointFiveD},
		AreasMM2:   []float64{200, 500, 860},
		Counts:     []int{1, 2, 3, 4},
		Quantities: []float64{1_000_000},
		D2D:        actuary.D2DFraction(0.10),
	}
}

func newSession(t testing.TB) *actuary.Session {
	t.Helper()
	s, err := actuary.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// singleProcessBest is the ground truth: the unsharded sweep-best
// answer of one local session.
func singleProcessBest(t testing.TB, req actuary.Request) *actuary.SweepBest {
	t.Helper()
	res := newSession(t).Evaluate(context.Background(), []actuary.Request{req})[0]
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	return res.SweepBest
}

// assertSameBest checks the distributed answer against the
// single-process one: top-K and Pareto byte-identical, summary exact
// except Sum (floating-point reassociation), statistics exact.
func assertSameBest(t *testing.T, got, want *actuary.SweepBest) {
	t.Helper()
	if !reflect.DeepEqual(got.Top, want.Top) {
		t.Errorf("Top = %v\nwant %v", ids(got.Top), ids(want.Top))
	}
	if !reflect.DeepEqual(got.Pareto, want.Pareto) {
		t.Errorf("Pareto = %v\nwant %v", ids(got.Pareto), ids(want.Pareto))
	}
	gs, ws := got.Summary, want.Summary
	if gs.Count != ws.Count || gs.Min != ws.Min || gs.Max != ws.Max ||
		gs.MinID != ws.MinID || gs.MaxID != ws.MaxID {
		t.Errorf("Summary = %+v, want %+v", gs, ws)
	}
	if math.Abs(gs.Sum-ws.Sum) > 1e-9*math.Abs(ws.Sum) {
		t.Errorf("Summary.Sum = %v, want %v (beyond reassociation tolerance)", gs.Sum, ws.Sum)
	}
	if got.Pruned != want.Pruned || got.Deduped != want.Deduped || got.Infeasible != want.Infeasible {
		t.Errorf("stats = %d/%d/%d pruned/deduped/infeasible, want %d/%d/%d",
			got.Pruned, got.Deduped, got.Infeasible, want.Pruned, want.Deduped, want.Infeasible)
	}
	// The merged first failure is the globally first failing candidate,
	// rendered identically whether or not it crossed the wire.
	if (got.FirstFailure == nil) != (want.FirstFailure == nil) {
		t.Errorf("FirstFailure presence = %v, want %v", got.FirstFailure, want.FirstFailure)
	} else if want.FirstFailure != nil {
		if g, w := actuary.FailureCause(got.FirstFailure).Error(), actuary.FailureCause(want.FirstFailure).Error(); g != w {
			t.Errorf("FirstFailure = %q, want %q", g, w)
		}
		if got.FirstFailureCandidate != want.FirstFailureCandidate {
			t.Errorf("FirstFailureCandidate = %d, want %d", got.FirstFailureCandidate, want.FirstFailureCandidate)
		}
	}
}

func ids(pts []actuary.SweepPoint) []string {
	out := make([]string, len(pts))
	for i, p := range pts {
		out[i] = p.ID
	}
	return out
}

func TestCoordinatorMatchesSingleProcess(t *testing.T) {
	grid := testGrid()
	req := actuary.Request{Question: actuary.QuestionSweepBest, Grid: &grid, TopK: 5}
	want := singleProcessBest(t, req)
	for _, backends := range []int{1, 2, 3} {
		for _, shards := range []int{0, 5} { // 0: one per backend
			t.Run(fmt.Sprintf("backends=%d shards=%d", backends, shards), func(t *testing.T) {
				var bs []client.Backend
				for i := 0; i < backends; i++ {
					bs = append(bs, client.Local(newSession(t)))
				}
				var opts []Option
				if shards > 0 {
					opts = append(opts, WithShards(shards))
				}
				coord, err := New(bs, opts...)
				if err != nil {
					t.Fatal(err)
				}
				got, err := coord.SweepBest(context.Background(), req)
				if err != nil {
					t.Fatal(err)
				}
				assertSameBest(t, got, want)
			})
		}
	}
}

// flakyBackend passes through okCalls evaluations, then fails every
// later one with a transport error — a backend dying mid-sweep.
type flakyBackend struct {
	inner   client.Backend
	okCalls int32
	calls   atomic.Int32
}

func (f *flakyBackend) Evaluate(ctx context.Context, reqs []actuary.Request) ([]actuary.Result, error) {
	if f.calls.Add(1) > f.okCalls {
		return nil, &actuary.Error{Code: actuary.ErrTransport, Index: -1, Question: -1,
			Err: errors.New("backend went away")}
	}
	return f.inner.Evaluate(ctx, reqs)
}

func (f *flakyBackend) Stream(ctx context.Context, req client.StreamRequest) (<-chan actuary.Result, error) {
	return f.inner.Stream(ctx, req)
}

func TestCoordinatorReassignsFailedShard(t *testing.T) {
	grid := testGrid()
	req := actuary.Request{Question: actuary.QuestionSweepBest, Grid: &grid, TopK: 5}
	want := singleProcessBest(t, req)
	// Backend 1 dies after its first shard; its remaining shards must
	// drain through backend 0.
	flaky := &flakyBackend{inner: client.Local(newSession(t)), okCalls: 1}
	coord, err := New([]client.Backend{client.Local(newSession(t)), flaky}, WithShards(6))
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.SweepBest(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	assertSameBest(t, got, want)
	if flaky.calls.Load() < 2 {
		t.Errorf("flaky backend was called %d times; the failure path never ran", flaky.calls.Load())
	}
}

func TestCoordinatorAllBackendsFail(t *testing.T) {
	grid := testGrid()
	dead := func() client.Backend { return &flakyBackend{inner: nil, okCalls: 0} }
	coord, err := New([]client.Backend{dead(), dead()})
	if err != nil {
		t.Fatal(err)
	}
	_, err = coord.SweepBest(context.Background(),
		actuary.Request{Question: actuary.QuestionSweepBest, Grid: &grid})
	if err == nil {
		t.Fatal("coordinator succeeded with every backend dead")
	}
	ae, ok := actuary.AsError(err)
	if !ok || ae.Code != actuary.ErrTransport {
		t.Errorf("error = %v, want a classified transport failure", err)
	}
}

func TestCoordinatorFatalEvaluationError(t *testing.T) {
	grid := testGrid()
	grid.Nodes = []string{"not-a-node"}
	calls := &countingBackend{inner: client.Local(newSession(t))}
	coord, err := New([]client.Backend{calls, client.Local(newSession(t))}, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	_, err = coord.SweepBest(context.Background(),
		actuary.Request{Question: actuary.QuestionSweepBest, Grid: &grid})
	if err == nil {
		t.Fatal("unknown node did not fail the distributed sweep")
	}
	ae, ok := actuary.AsError(err)
	if !ok || ae.Code != actuary.ErrUnknownNode {
		t.Errorf("error = %v, want classified unknown-node", err)
	}
}

// countingBackend counts Evaluate calls.
type countingBackend struct {
	inner client.Backend
	calls atomic.Int32
}

func (c *countingBackend) Evaluate(ctx context.Context, reqs []actuary.Request) ([]actuary.Result, error) {
	c.calls.Add(1)
	return c.inner.Evaluate(ctx, reqs)
}

func (c *countingBackend) Stream(ctx context.Context, req client.StreamRequest) (<-chan actuary.Result, error) {
	return c.inner.Stream(ctx, req)
}

func TestCoordinatorInfeasibleGrid(t *testing.T) {
	// Every point pruned (a 5000 mm² interposer design): the merged
	// empty shards must reproduce the single-process ErrInfeasible.
	grid := actuary.SweepGrid{
		Name:       "nofit",
		Nodes:      []string{"5nm"},
		Schemes:    []actuary.Scheme{actuary.TwoPointFiveD},
		AreasMM2:   []float64{5000},
		Counts:     []int{4},
		Quantities: []float64{1e6},
	}
	coord, err := New([]client.Backend{client.Local(newSession(t)), client.Local(newSession(t))})
	if err != nil {
		t.Fatal(err)
	}
	_, err = coord.SweepBest(context.Background(),
		actuary.Request{Question: actuary.QuestionSweepBest, Grid: &grid})
	if err == nil {
		t.Fatal("infeasible grid did not fail the distributed sweep")
	}
	ae, ok := actuary.AsError(err)
	if !ok || ae.Code != actuary.ErrInfeasible {
		t.Errorf("error = %v, want classified infeasible", err)
	}
}

func TestCoordinatorRejectsBadRequests(t *testing.T) {
	grid := testGrid()
	coord, err := New([]client.Backend{client.Local(newSession(t))})
	if err != nil {
		t.Fatal(err)
	}
	cases := []actuary.Request{
		{Question: actuary.QuestionSweepBest},                                            // no grid
		{Question: actuary.QuestionRE, Grid: &grid},                                      // wrong question
		{Question: actuary.QuestionSweepBest, Grid: &grid, ShardIndex: 1, ShardCount: 2}, // pre-sharded
		{Question: actuary.QuestionSweepBest, Grid: &actuary.SweepGrid{Name: "noaxes"}},  // invalid grid
	}
	for i, req := range cases {
		if _, err := coord.SweepBest(context.Background(), req); err == nil {
			t.Errorf("case %d: bad request accepted", i)
		}
	}
	if _, err := New(nil); err == nil {
		t.Error("coordinator built with no backends")
	}
}

// TestCoordinatorOverDaemons is the end-to-end acceptance check: a
// sweep split across two actuaryd daemons (full HTTP wire protocol)
// returns top-K, Pareto front and summary identical to the
// single-process QuestionSweepBest answer, and the run survives one
// daemon dying mid-sweep.
func TestCoordinatorOverDaemons(t *testing.T) {
	grid := testGrid()
	req := actuary.Request{Question: actuary.QuestionSweepBest, Grid: &grid, TopK: 5}
	want := singleProcessBest(t, req)

	daemon := func() (*httptest.Server, client.Backend) {
		ts := httptest.NewServer(server.New(newSession(t)).Handler())
		c, err := client.Dial(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		return ts, c
	}
	ts1, c1 := daemon()
	defer ts1.Close()
	ts2, c2 := daemon()
	defer ts2.Close()

	coord, err := New([]client.Backend{c1, c2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.SweepBest(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	assertSameBest(t, got, want)

	// Daemon 2 dies mid-sweep: after its first answered shard, every
	// later call fails at the socket. The coordinator must reassign
	// the lost shards to daemon 1 and still produce the exact answer.
	ts3, c3 := daemon()
	var once sync.Once
	dying := &dyingBackend{inner: c3, kill: func() { once.Do(ts3.Close) }}
	coord, err = New([]client.Backend{c1, dying}, WithShards(6))
	if err != nil {
		t.Fatal(err)
	}
	got, err = coord.SweepBest(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	assertSameBest(t, got, want)
	if dying.calls.Load() < 2 {
		t.Errorf("dying daemon saw %d calls; the mid-sweep failure never happened", dying.calls.Load())
	}
}

// dyingBackend lets its first Evaluate through, then kills the daemon
// so later calls fail with a real transport error.
type dyingBackend struct {
	inner client.Backend
	kill  func()
	calls atomic.Int32
}

func (d *dyingBackend) Evaluate(ctx context.Context, reqs []actuary.Request) ([]actuary.Result, error) {
	if d.calls.Add(1) > 1 {
		d.kill()
	}
	return d.inner.Evaluate(ctx, reqs)
}

func (d *dyingBackend) Stream(ctx context.Context, req client.StreamRequest) (<-chan actuary.Result, error) {
	return d.inner.Stream(ctx, req)
}

func TestSweepBestScenario(t *testing.T) {
	cfg := actuary.ScenarioConfig{
		Version: 2, Name: "dist", Questions: []string{"sweep-best"},
		Sweeps: []actuary.SweepConfig{{
			Name: "dist", Nodes: []string{"5nm", "7nm"}, Schemes: []string{"MCM", "2.5D"},
			D2DFraction: 0.10, Quantity: 1_000_000,
			AreasMM2: []float64{200, 500, 860}, Counts: []int{1, 2, 3, 4},
			TopK: 5,
		}},
	}
	reqs, err := cfg.Requests()
	if err != nil {
		t.Fatal(err)
	}
	want := singleProcessBest(t, reqs[0])
	coord, err := New([]client.Backend{client.Local(newSession(t)), client.Local(newSession(t))})
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.SweepBestScenario(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertSameBest(t, got, want)

	// Scenarios that are not exactly one sweep-best are rejected.
	bad := cfg
	bad.Questions = []string{"total-cost"}
	if _, err := coord.SweepBestScenario(context.Background(), bad); err == nil {
		t.Error("non-sweep-best scenario accepted")
	}
	sharded := cfg
	sharded.ShardIndex, sharded.ShardCount = 0, 2
	if _, err := coord.SweepBestScenario(context.Background(), sharded); err == nil {
		t.Error("pre-sharded scenario accepted")
	}
}

func TestCoordinatorCancellation(t *testing.T) {
	grid := testGrid()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	coord, err := New([]client.Backend{client.Local(newSession(t))})
	if err != nil {
		t.Fatal(err)
	}
	_, err = coord.SweepBest(ctx, actuary.Request{Question: actuary.QuestionSweepBest, Grid: &grid})
	if err == nil {
		t.Fatal("canceled context produced an answer")
	}
}

// BenchmarkDistributedSweep compares one sweep-best over a ~50k-point
// grid fanned across 1, 2 and 4 local backends. A sweep-best request
// walks its shard single-threaded, so the fan-out is what buys
// parallelism.
func BenchmarkDistributedSweep(b *testing.B) {
	areas, err := actuary.SweepAreaRange(100, 850, 5)
	if err != nil {
		b.Fatal(err)
	}
	grid := actuary.SweepGrid{
		Name:       "bench",
		Nodes:      []string{"5nm", "7nm", "12nm"},
		Schemes:    []actuary.Scheme{actuary.MCM, actuary.TwoPointFiveD},
		AreasMM2:   areas,
		Counts:     []int{1, 2, 3, 4, 5, 6, 7, 8},
		Quantities: []float64{1e5, 2e5, 5e5, 1e6, 2e6, 5e6, 1e7},
		D2D:        actuary.D2DFraction(0.10),
	}
	if got := grid.Size(); got < 50_000 {
		b.Fatalf("benchmark grid has %d points, want ≥ 50k", got)
	}
	req := actuary.Request{Question: actuary.QuestionSweepBest, Grid: &grid, TopK: 10}
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("backends=%d", n), func(b *testing.B) {
			var bs []client.Backend
			for i := 0; i < n; i++ {
				bs = append(bs, client.Local(newSession(b)))
			}
			coord, err := New(bs)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := coord.SweepBest(context.Background(), req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestCoordinatorTaxonomyOverDaemons: the unknown-node classification
// survives remote shards — the error code must not depend on whether
// backends are local or spoken to over the wire.
func TestCoordinatorTaxonomyOverDaemons(t *testing.T) {
	grid := testGrid()
	grid.Nodes = []string{"not-a-node"}
	ts := httptest.NewServer(server.New(newSession(t)).Handler())
	defer ts.Close()
	c, err := client.Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := New([]client.Backend{c}, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	_, err = coord.SweepBest(context.Background(),
		actuary.Request{Question: actuary.QuestionSweepBest, Grid: &grid})
	if err == nil {
		t.Fatal("unknown node did not fail the remote distributed sweep")
	}
	if ae, ok := actuary.AsError(err); !ok || ae.Code != actuary.ErrUnknownNode {
		t.Errorf("error = %v, want classified unknown-node (remote backends must match local)", err)
	}
}

// TestCoordinatorPartialFailureFirstFailure: a grid where one node
// axis value fails every evaluation. The merged answer must report the
// globally first failing candidate — the same failure, at the same
// grid position, as the single-process sweep — whether the shards ran
// locally or behind real daemons.
func TestCoordinatorPartialFailureFirstFailure(t *testing.T) {
	grid := testGrid()
	grid.Nodes = []string{"5nm", "not-a-node"}
	req := actuary.Request{Question: actuary.QuestionSweepBest, Grid: &grid, TopK: 5}
	want := singleProcessBest(t, req)
	if want.FirstFailure == nil || want.Infeasible == 0 {
		t.Fatal("partial-failure grid produced no failures; the test grid is wrong")
	}

	local, err := New([]client.Backend{client.Local(newSession(t)), client.Local(newSession(t))}, WithShards(5))
	if err != nil {
		t.Fatal(err)
	}
	got, err := local.SweepBest(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	assertSameBest(t, got, want)

	ts := httptest.NewServer(server.New(newSession(t)).Handler())
	defer ts.Close()
	c, err := client.Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := New([]client.Backend{c}, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	got, err = remote.SweepBest(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	assertSameBest(t, got, want)
}

// shardCountingBackend wraps a Backend and counts evaluations per
// shard index, so resume tests can prove drained shards are never
// re-dispatched.
type shardCountingBackend struct {
	inner client.Backend
	mu    sync.Mutex
	calls map[int]int
}

func newShardCounting(inner client.Backend) *shardCountingBackend {
	return &shardCountingBackend{inner: inner, calls: make(map[int]int)}
}

func (b *shardCountingBackend) Evaluate(ctx context.Context, reqs []actuary.Request) ([]actuary.Result, error) {
	b.mu.Lock()
	for _, r := range reqs {
		b.calls[r.ShardIndex]++
	}
	b.mu.Unlock()
	return b.inner.Evaluate(ctx, reqs)
}

func (b *shardCountingBackend) Stream(ctx context.Context, req client.StreamRequest) (<-chan actuary.Result, error) {
	return b.inner.Stream(ctx, req)
}

func (b *shardCountingBackend) shardCalls() map[int]int {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[int]int, len(b.calls))
	for k, v := range b.calls {
		out[k] = v
	}
	return out
}

// TestCoordinatorCheckpointResume is the coordinator acceptance test:
// a run interrupted after some shards drained and restarted from its
// checkpoint re-dispatches only the undrained shards and still merges
// the exact single-process answer. The checkpoint takes the same
// wire round trip a real restart would.
func TestCoordinatorCheckpointResume(t *testing.T) {
	grid := testGrid()
	req := actuary.Request{Question: actuary.QuestionSweepBest, Grid: &grid, TopK: 4}
	want := singleProcessBest(t, req)
	const shards = 6

	// First run: abort (via context cancel) once half the shards have
	// checkpointed.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	coord, err := New([]client.Backend{client.Local(newSession(t))}, WithShards(shards))
	if err != nil {
		t.Fatal(err)
	}
	var last *actuary.CoordinatorCheckpoint
	_, err = coord.SweepBestCheckpointed(ctx, req, nil, func(cp *actuary.CoordinatorCheckpoint) error {
		data, err := json.Marshal(cp)
		if err != nil {
			return err
		}
		back := new(actuary.CoordinatorCheckpoint)
		if err := json.Unmarshal(data, back); err != nil {
			return err
		}
		last = back
		if len(back.Completed) == shards/2 {
			cancel() // the "kill"
		}
		return nil
	})
	if err == nil {
		t.Fatal("interrupted run should fail with the cancellation")
	}
	if last == nil || len(last.Completed) < shards/2 {
		t.Fatalf("no usable checkpoint before the interruption: %+v", last)
	}
	if len(last.Completed) == shards {
		t.Fatal("every shard drained before the cancel — the resume proves nothing")
	}

	// Second run: a fresh coordinator (fresh session — a restarted
	// process) resumes from the checkpoint.
	backend := newShardCounting(client.Local(newSession(t)))
	coord2, err := New([]client.Backend{backend}, WithShards(shards))
	if err != nil {
		t.Fatal(err)
	}
	var final *actuary.CoordinatorCheckpoint
	got, err := coord2.SweepBestCheckpointed(context.Background(), req, last,
		func(cp *actuary.CoordinatorCheckpoint) error { final = cp; return nil })
	if err != nil {
		t.Fatal(err)
	}
	assertSameBest(t, got, want)
	calls := backend.shardCalls()
	for _, sr := range last.Completed {
		if calls[sr.Shard] != 0 {
			t.Errorf("drained shard %d was re-dispatched %d times", sr.Shard, calls[sr.Shard])
		}
	}
	total := 0
	for _, c := range calls {
		total += c
	}
	if total != shards-len(last.Completed) {
		t.Errorf("resumed run evaluated %d shards, want %d", total, shards-len(last.Completed))
	}
	if final == nil || len(final.Completed) != shards {
		t.Errorf("final checkpoint records %d shards, want all %d", len(final.Completed), shards)
	}
}

// TestCoordinatorCheckpointRejects covers the coordinator resume
// guard rails: wrong fingerprint, wrong shard count, out-of-range
// recorded shards.
func TestCoordinatorCheckpointRejects(t *testing.T) {
	grid := testGrid()
	req := actuary.Request{Question: actuary.QuestionSweepBest, Grid: &grid, TopK: 4}
	fp, err := actuary.SweepFingerprint(req)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := New([]client.Backend{client.Local(newSession(t))}, WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cases := map[string]*actuary.CoordinatorCheckpoint{
		"wrong fingerprint": {Fingerprint: "deadbeef", Shards: 3},
		"wrong shard count": {Fingerprint: fp, Shards: 4},
		"shard out of range": {Fingerprint: fp, Shards: 3,
			Completed: []actuary.ShardResult{{Shard: 7, Best: &actuary.SweepBest{}}}},
	}
	for name, cp := range cases {
		if _, err := coord.SweepBestCheckpointed(ctx, req, cp, nil); !errors.Is(err, actuary.ErrCheckpointMismatch) {
			t.Errorf("%s: %v, want ErrCheckpointMismatch", name, err)
		}
	}
	// And a complete checkpoint needs no backend at all: resuming it
	// just merges.
	var final *actuary.CoordinatorCheckpoint
	got, err := coord.SweepBestCheckpointed(ctx, req, nil,
		func(cp *actuary.CoordinatorCheckpoint) error { final = cp; return nil })
	if err != nil {
		t.Fatal(err)
	}
	broken, err := New([]client.Backend{&flakyBackend{inner: nil, okCalls: 0}}, WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := broken.SweepBestCheckpointed(ctx, req, final, nil)
	if err != nil {
		t.Fatalf("resume of a complete checkpoint touched a backend: %v", err)
	}
	assertSameBest(t, resumed, got)
}

// TestCoordinatorCheckpointRejectsInMemoryCorruption checks that the
// resume path re-validates what the wire decoder would have: an
// in-memory checkpoint (never JSON round-tripped) with negative,
// duplicate or answerless shard entries is rejected, not merged.
func TestCoordinatorCheckpointRejectsInMemoryCorruption(t *testing.T) {
	grid := testGrid()
	req := actuary.Request{Question: actuary.QuestionSweepBest, Grid: &grid, TopK: 2}
	fp, err := actuary.SweepFingerprint(req)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := New([]client.Backend{client.Local(newSession(t))}, WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	empty := &actuary.SweepBest{}
	cases := map[string][]actuary.ShardResult{
		"negative shard":  {{Shard: -1, Best: empty}},
		"duplicate shard": {{Shard: 1, Best: empty}, {Shard: 1, Best: empty}},
		"missing answer":  {{Shard: 0, Best: nil}},
	}
	for name, completed := range cases {
		cp := &actuary.CoordinatorCheckpoint{Fingerprint: fp, Shards: 3, Completed: completed}
		if _, err := coord.SweepBestCheckpointed(context.Background(), req, cp, nil); !errors.Is(err, actuary.ErrCheckpointMismatch) {
			t.Errorf("%s: %v, want ErrCheckpointMismatch", name, err)
		}
	}
}
