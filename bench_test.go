package actuary

// One benchmark per paper artifact: each bench regenerates the full
// figure (workload, sweep, baselines) per iteration, so `go test
// -bench=.` both measures the model's throughput and proves every
// experiment still runs end to end. The correctness of the regenerated
// numbers is asserted by the shape tests in internal/experiments.

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"chipletactuary/internal/cost"
	"chipletactuary/internal/experiments"
	"chipletactuary/internal/explore"
	"chipletactuary/internal/nre"
	"chipletactuary/internal/packaging"
	"chipletactuary/internal/system"
	"chipletactuary/internal/tech"
	"chipletactuary/internal/wafer"
)

func benchSetup(b *testing.B) (*tech.Database, packaging.Params, *cost.Engine, *explore.Evaluator) {
	b.Helper()
	db := tech.Default()
	params := packaging.DefaultParams()
	eng, err := cost.NewEngine(db, params)
	if err != nil {
		b.Fatal(err)
	}
	ev, err := explore.NewEvaluator(db, params)
	if err != nil {
		b.Fatal(err)
	}
	return db, params, eng, ev
}

// BenchmarkFig2YieldCostArea regenerates Figure 2: the yield-area and
// normalized cost-area curves of the six technologies.
func BenchmarkFig2YieldCostArea(b *testing.B) {
	db, _, _, _ := benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2(db); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4REGrid regenerates Figure 4: the 3×3 grid of normalized
// RE cost bars (3 nodes × 3 chiplet counts × 9 areas × 4 schemes).
func BenchmarkFig4REGrid(b *testing.B) {
	_, _, eng, _ := benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(eng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5AMDValidation regenerates Figure 5: the AMD EPYC-like
// chiplet-vs-monolithic validation at five core counts.
func BenchmarkFig5AMDValidation(b *testing.B) {
	db, params, _, _ := benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(db, params); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6TotalCost regenerates Figure 6: RE + amortized NRE for
// the 800 mm² system at 2 nodes × 3 quantities × 4 schemes.
func BenchmarkFig6TotalCost(b *testing.B) {
	_, _, _, ev := benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(ev); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8SCMS regenerates Figure 8: the SCMS reuse families on
// MCM and 2.5D, with and without package reuse, plus SoC baselines.
func BenchmarkFig8SCMS(b *testing.B) {
	_, _, _, ev := benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(ev); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9OCME regenerates Figure 9: the OCME families including
// the heterogeneous-center variant.
func BenchmarkFig9OCME(b *testing.B) {
	_, _, _, ev := benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9(ev); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10FSMC regenerates Figure 10: all five (k, n) FSMC
// configurations — 331 multi-chip systems plus 331 SoC baselines per
// scheme pair at the largest point.
func BenchmarkFig10FSMC(b *testing.B) {
	_, _, _, ev := benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig10(ev); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClaims evaluates every §4–§6 in-text claim.
func BenchmarkClaims(b *testing.B) {
	db, params, _, _ := benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Claims(db, params); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAssemblyFlow compares chip-last vs chip-first
// (Eq. 5) across schemes and chiplet counts.
func BenchmarkAblationAssemblyFlow(b *testing.B) {
	_, _, eng, _ := benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FlowAblation(eng, "7nm", 600); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAmortization compares the per-system-unit and
// per-instance NRE amortization policies on the SCMS family.
func BenchmarkAblationAmortization(b *testing.B) {
	_, _, _, ev := benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AmortizationAblation(ev); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationD2DOverhead sweeps the D2D area fraction.
func BenchmarkAblationD2DOverhead(b *testing.B) {
	_, _, eng, _ := benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.D2DAblation(eng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBondYield sweeps the micro-bump bond yield on 2.5D.
func BenchmarkAblationBondYield(b *testing.B) {
	db, params, _, _ := benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.BondYieldAblation(db, params); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionMaturity regenerates the yield-maturity timeline.
func BenchmarkExtensionMaturity(b *testing.B) {
	db, params, _, _ := benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MaturityTimeline(db, params); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionInterposerStudy regenerates the passive/active
// interposer comparison.
func BenchmarkExtensionInterposerStudy(b *testing.B) {
	db, params, _, _ := benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ActiveInterposerStudy(db, params); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSalvage regenerates the core-harvesting sweep.
func BenchmarkAblationSalvage(b *testing.B) {
	db, params, _, _ := benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SalvageAblation(db, params); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRobustness runs the Monte Carlo conclusion-stability study
// (40 scenarios per conclusion to keep the bench tractable).
func BenchmarkRobustness(b *testing.B) {
	db, params, _, _ := benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Robustness(db, params, 40, 0.15); err != nil {
			b.Fatal(err)
		}
	}
}

// sessionBenchRequests builds a 120-request total-cost sweep: a
// 6-area × 4-count grid repeated five times, the shape of a design
// space exploration where the same die geometries recur constantly.
func sessionBenchRequests(b *testing.B) []Request {
	b.Helper()
	var reqs []Request
	for rep := 0; rep < 5; rep++ {
		for _, area := range []float64{300, 400, 500, 600, 700, 800} {
			for k := 1; k <= 4; k++ {
				scheme := packaging.MCM
				if k == 1 {
					scheme = packaging.SoC
				}
				s, err := system.PartitionEqual(fmt.Sprintf("p-a%.0f-k%d", area, k),
					"5nm", area, k, scheme, D2DFraction(0.10), 1_000_000)
				if err != nil {
					b.Fatal(err)
				}
				reqs = append(reqs, Request{Question: QuestionTotalCost, System: s})
			}
		}
	}
	return reqs
}

// BenchmarkSessionEvaluateBatch measures the batch pipeline on a
// 120-request sweep. "cached" is the default Session (worker pool +
// shared KGD cache), "uncached" disables the cache, and
// "single-shot-uncached" is the pre-Session baseline: one request at
// a time, one worker, no memoization.
func BenchmarkSessionEvaluateBatch(b *testing.B) {
	reqs := sessionBenchRequests(b)
	ctx := context.Background()
	runBatch := func(b *testing.B, s *Session) {
		b.Helper()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, r := range s.Evaluate(ctx, reqs) {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		}
	}
	b.Run("cached", func(b *testing.B) {
		s, err := NewSession()
		if err != nil {
			b.Fatal(err)
		}
		runBatch(b, s)
	})
	b.Run("uncached", func(b *testing.B) {
		s, err := NewSession(WithCacheSize(0))
		if err != nil {
			b.Fatal(err)
		}
		runBatch(b, s)
	})
	b.Run("single-shot-uncached", func(b *testing.B) {
		s, err := NewSession(WithCacheSize(0), WithWorkers(1))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, req := range reqs {
				r := s.Evaluate(ctx, []Request{req})[0]
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		}
	})
	// Under the high-fidelity grid-packed wafer estimator each die
	// evaluation walks the full stepper grid, so memoization carries
	// the batch instead of merely breaking even.
	gridParams := packaging.DefaultParams()
	gridParams.Estimator = wafer.GridPacked
	b.Run("grid-packed-cached", func(b *testing.B) {
		s, err := NewSession(WithPackaging(gridParams))
		if err != nil {
			b.Fatal(err)
		}
		runBatch(b, s)
	})
	b.Run("grid-packed-uncached", func(b *testing.B) {
		s, err := NewSession(WithPackaging(gridParams), WithCacheSize(0))
		if err != nil {
			b.Fatal(err)
		}
		runBatch(b, s)
	})
}

// streamBenchGrid builds an area × 8-count design space; stepMM2 10
// gives 568 points, 1.25 gives 4488 (the "8x" size).
func streamBenchGrid(b *testing.B, stepMM2 float64) SweepGrid {
	b.Helper()
	areas, err := SweepAreaRange(100, 800, stepMM2)
	if err != nil {
		b.Fatal(err)
	}
	counts, err := SweepCountRange(1, 8)
	if err != nil {
		b.Fatal(err)
	}
	return SweepGrid{
		Name:       "bench",
		Nodes:      []string{"5nm"},
		Schemes:    []packaging.Scheme{packaging.MCM},
		AreasMM2:   areas,
		Counts:     counts,
		Quantities: []float64{1_000_000},
		D2D:        D2DFraction(0.10),
	}
}

// BenchmarkSessionStreamSweep compares the two faces of the sweep
// pipeline at two grid sizes (568 and 4488 points): "streamed" pulls
// lazily from the generator through Session.Stream into an online
// top-K, "materialized" builds the full request and result slices the
// way the pre-streaming API had to. Per-point evaluation dominates
// allocs/op in both arms; the signal is in the *difference* — the
// materialized arm's extra B/op over streamed grows with grid size
// (the slices), the streamed arm's pipeline overhead does not. The
// retained-memory boundedness claim is additionally pinned by
// TestStreamLazyGeneration (the source is never pulled more than the
// in-flight window ahead of the consumer).
func BenchmarkSessionStreamSweep(b *testing.B) {
	ctx := context.Background()
	// reportThroughput turns the wall clock into the headline number:
	// points/sec computed from b.Elapsed (not ns/op arithmetic after
	// the fact), plus the partials-cache hit rate — the two signals
	// BENCH_*.json and the CI bench-smoke gate track.
	reportThroughput := func(b *testing.B, s *Session, points int) {
		if sec := b.Elapsed().Seconds(); sec > 0 {
			b.ReportMetric(float64(points*b.N)/sec, "points/sec")
		}
		ps := s.PartialsCacheStats()
		if probes := ps.Packaging.Hits + ps.Packaging.Misses; probes > 0 {
			b.ReportMetric(float64(ps.Packaging.Hits)/float64(probes), "partials-hit-rate")
		}
	}
	sizes := []struct {
		name   string
		step   float64
		points int
	}{
		{"568pt", 10, 568},
		{"4488pt", 1.25, 4488},
	}
	for _, size := range sizes {
		b.Run("streamed-"+size.name, func(b *testing.B) {
			s, err := NewSession()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				grid := streamBenchGrid(b, size.step)
				// Lean generation feeds the run-batched evaluator — the
				// production configuration of a total-cost sweep
				// (config.Source compiles scenarios the same way).
				src, err := SweepSource(grid.Points().Lean(), QuestionTotalCost, PerSystemUnit)
				if err != nil {
					b.Fatal(err)
				}
				ch, err := s.Stream(ctx, src)
				if err != nil {
					b.Fatal(err)
				}
				top := NewCostTopK(5)
				var stats StreamStats
				Reduce(ch, top, &stats)
				if stats.Failed != 0 || len(top.Results()) != 5 {
					b.Fatalf("stream failed: %+v", stats)
				}
				if stats.OK != size.points {
					b.Fatalf("streamed %d points, want %d", stats.OK, size.points)
				}
			}
			b.StopTimer()
			reportThroughput(b, s, size.points)
		})
		b.Run("materialized-"+size.name, func(b *testing.B) {
			s, err := NewSession()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				grid := streamBenchGrid(b, size.step)
				src, err := SweepSource(grid.Points(), QuestionTotalCost, PerSystemUnit)
				if err != nil {
					b.Fatal(err)
				}
				var reqs []Request
				for {
					r, ok := src.Next()
					if !ok {
						break
					}
					reqs = append(reqs, r)
				}
				results := s.Evaluate(ctx, reqs)
				top := NewCostTopK(5)
				for _, r := range results {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
					top.Observe(r)
				}
				if len(top.Results()) != 5 {
					b.Fatal("top-K lost results")
				}
			}
			b.StopTimer()
			reportThroughput(b, s, size.points)
		})
	}
	// One sweep-best request answers the whole grid inside the worker:
	// the one-request face of the same pipeline.
	b.Run("sweep-best-question", func(b *testing.B) {
		s, err := NewSession()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			grid := streamBenchGrid(b, 10)
			r := s.Evaluate(ctx, []Request{{Question: QuestionSweepBest, Grid: &grid, TopK: 5}})[0]
			if r.Err != nil {
				b.Fatal(r.Err)
			}
			if len(r.SweepBest.Top) != 5 {
				b.Fatal("sweep-best lost results")
			}
		}
		b.StopTimer()
		reportThroughput(b, s, 568)
	})
}

// BenchmarkSingleSystemRE measures the core RE evaluation alone — the
// unit of work every figure is built from.
func BenchmarkSingleSystemRE(b *testing.B) {
	_, _, eng, _ := benchSetup(b)
	s, err := system.PartitionEqual("bench", "5nm", 800, 3, packaging.MCM,
		D2DFraction(0.10), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.RE(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPortfolioNRE measures the NRE engine on a shared-design
// portfolio (the SCMS family).
func BenchmarkPortfolioNRE(b *testing.B) {
	_, params, _, ev := benchSetup(b)
	family, err := SCMS(SCMSConfig{
		Node: "7nm", ModuleAreaMM2: 200, Counts: []int{1, 2, 4},
		Scheme: packaging.MCM, QuantityPerSystem: 500_000, Params: params,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.NRE.Portfolio(family, nre.PerSystemUnit); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCrossoverQuantity measures the §4.2 pay-back solver.
func BenchmarkCrossoverQuantity(b *testing.B) {
	_, _, _, ev := benchSetup(b)
	soc := system.Monolithic("soc", "5nm", 800, 1)
	mcm, err := system.PartitionEqual("mcm", "5nm", 800, 2, packaging.MCM, D2DFraction(0.10), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.CrossoverQuantity(soc, mcm); err != nil {
			b.Fatal(err)
		}
	}
}

// searchBenchGrid builds the ≥100k-candidate design space the
// adaptive-search benchmark walks: a 0.05 mm² area step over
// 100–800 mm² crossed with counts 1–8 gives 14001 × 8 = 112008
// candidates — big enough that the evaluated-ratio metric means
// something, small enough that the exhaustive reference answer
// still runs in well under a second. The 100M quantity puts the
// grid in the volume-production regime where RE dominates the
// total, which is where the k·KGD lower bound is tight enough to
// carry the pruning-only arm.
func searchBenchGrid(b *testing.B) *SweepGrid {
	b.Helper()
	areas, err := SweepAreaRange(100, 800, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	counts, err := SweepCountRange(1, 8)
	if err != nil {
		b.Fatal(err)
	}
	return &SweepGrid{
		Name:       "searchbench",
		Nodes:      []string{"5nm"},
		Schemes:    []packaging.Scheme{packaging.MCM},
		AreasMM2:   areas,
		Counts:     counts,
		Quantities: []float64{100_000_000},
		D2D:        D2DFraction(0.10),
	}
}

// BenchmarkSearchBest measures the adaptive search against the
// exhaustive sweep on a 112008-candidate grid, and asserts the PR's
// acceptance ratios while it is at it: the pruning-only arm must
// return the exhaustive answer byte-for-byte while evaluating ≤25% of
// the grid, and the staged refine+halving arm must land within its
// declared tolerance of the true optimum while evaluating ≤10%. The
// headline metric is evaluated-ratio (evaluated / grid size); BENCH
// baselines track it alongside points/sec.
func BenchmarkSearchBest(b *testing.B) {
	ctx := context.Background()
	grid := searchBenchGrid(b)
	s, err := NewSession()
	if err != nil {
		b.Fatal(err)
	}
	exact := s.Evaluate(ctx, []Request{{Question: QuestionSweepBest, Grid: grid, TopK: 3}})[0]
	if exact.Err != nil {
		b.Fatal(exact.Err)
	}
	wantTop, err := json.Marshal(exact.SweepBest.Top)
	if err != nil {
		b.Fatal(err)
	}
	report := func(b *testing.B, st SearchStats) {
		b.ReportMetric(st.EvaluatedRatio(), "evaluated-ratio")
		if sec := b.Elapsed().Seconds(); sec > 0 {
			b.ReportMetric(float64(st.Evaluated*b.N)/sec, "points/sec")
		}
	}
	b.Run("pruning-only", func(b *testing.B) {
		var st SearchStats
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := s.Evaluate(ctx, []Request{{Question: QuestionSearchBest, Grid: grid, TopK: 3}})[0]
			if r.Err != nil {
				b.Fatal(r.Err)
			}
			got, err := json.Marshal(r.SearchBest.Top)
			if err != nil {
				b.Fatal(err)
			}
			if string(got) != string(wantTop) {
				b.Fatalf("pruning-only answer diverged from exhaustive:\n got %s\nwant %s", got, wantTop)
			}
			st = r.SearchBest.Stats
		}
		b.StopTimer()
		if ratio := st.EvaluatedRatio(); ratio > 0.25 {
			b.Fatalf("pruning-only evaluated %.1f%% of the grid, want ≤25%%", 100*ratio)
		}
		report(b, st)
	})
	b.Run("refine-halving", func(b *testing.B) {
		const tolerance = 0.05
		spec := &SearchSpec{
			Bound:     true,
			Tolerance: tolerance,
			Halving:   &SearchHalvingSpec{Slabs: 8, Sample: 64},
			Refine:    &SearchRefineSpec{Factor: 8, Knees: 2},
		}
		exactBest := exact.SweepBest.Top[0].Total.Total()
		var st SearchStats
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := s.Evaluate(ctx, []Request{{Question: QuestionSearchBest, Grid: grid, TopK: 3, Search: spec}})[0]
			if r.Err != nil {
				b.Fatal(r.Err)
			}
			if best := r.SearchBest.Top[0].Total.Total(); best > exactBest*(1+tolerance) {
				b.Fatalf("staged search best %.4f misses exhaustive %.4f by more than %.0f%%",
					best, exactBest, 100*tolerance)
			}
			st = r.SearchBest.Stats
		}
		b.StopTimer()
		if ratio := st.EvaluatedRatio(); ratio > 0.10 {
			b.Fatalf("staged search evaluated %.1f%% of the grid, want ≤10%%", 100*ratio)
		}
		report(b, st)
	})
}
