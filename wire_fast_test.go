package actuary_test

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"testing"

	"chipletactuary"
)

// encodeReference renders r the way the server's NDJSON loop used to:
// json.Encoder, HTML escaping on, trailing newline.
func encodeReference(t *testing.T, r actuary.Result) ([]byte, error) {
	t.Helper()
	var buf bytes.Buffer
	err := json.NewEncoder(&buf).Encode(r)
	return buf.Bytes(), err
}

func assertLineIdentity(t *testing.T, r actuary.Result) {
	t.Helper()
	want, refErr := encodeReference(t, r)
	got, err := actuary.AppendResultLine(nil, r)
	if refErr != nil {
		if err == nil {
			t.Fatalf("result %q: encoding/json failed (%v) but AppendResultLine succeeded", r.ID, refErr)
		}
		return
	}
	if err != nil {
		t.Fatalf("result %q: AppendResultLine: %v", r.ID, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("result %q: NDJSON bytes diverge\n got %s\nwant %s", r.ID, got, want)
	}
}

// TestAppendResultLineStreamIdentity drains a real sweep stream —
// successes on both lean and materialized paths plus structured
// failures — and demands byte identity line by line.
func TestAppendResultLineStreamIdentity(t *testing.T) {
	s := newTestSession(t, actuary.WithWorkers(2))
	grids := []actuary.SweepGrid{
		testGrid(mustAreaRange(t, 100, 500, 50), []int{1, 2, 3, 4}),
		{
			Name:       "badnode",
			Nodes:      []string{"no-such-node"},
			Schemes:    []actuary.Scheme{actuary.MCM},
			AreasMM2:   []float64{100, 200},
			Counts:     []int{1, 2},
			Quantities: []float64{1000},
			D2D:        actuary.D2DFraction(0.10),
		},
	}
	seen := 0
	var buf []byte
	for _, grid := range grids {
		for _, lean := range []bool{false, true} {
			gen := grid.Points()
			if lean {
				gen.Lean()
			}
			src, err := actuary.SweepSource(gen, actuary.QuestionTotalCost, actuary.PerSystemUnit)
			if err != nil {
				t.Fatal(err)
			}
			ch, err := s.Stream(context.Background(), src, actuary.StreamOrdered())
			if err != nil {
				t.Fatal(err)
			}
			for r := range ch {
				assertLineIdentity(t, r)
				// Also through a reused buffer, the server's pattern.
				buf, err = actuary.AppendResultLine(buf[:0], r)
				if err != nil {
					t.Fatalf("reused buffer: %v", err)
				}
				want, _ := encodeReference(t, r)
				if !bytes.Equal(buf, want) {
					t.Fatalf("result %q: reused-buffer bytes diverge", r.ID)
				}
				seen++
			}
		}
	}
	if seen == 0 {
		t.Fatal("streams produced no results")
	}
}

// TestAppendResultLineAdversarialValues hits the encoder's edge cases:
// float notation switchovers, exponent trimming, HTML and control
// characters, invalid UTF-8, JSONP separators, and non-finite values
// that must fall back to encoding/json's exact failure.
func TestAppendResultLineAdversarialValues(t *testing.T) {
	tc := func(v float64) *actuary.TotalCost {
		return &actuary.TotalCost{
			RE:  actuary.REBreakdown{RawChips: v, ChipDefects: -v},
			NRE: actuary.NREBreakdown{Modules: v, D2D: v / 3},
		}
	}
	floats := []float64{
		0, 1, -1, 0.1, -0.1, 1e-6, 9.999999e-7, 1e-7, 1e21, 9.99999e20,
		-1e21, 1e-9, 2.5e-22, 1e300, -4.9e-324, math.MaxFloat64,
		math.SmallestNonzeroFloat64, 225.50768801562344, 1768.4945867096344,
		1.0 / 3.0, 123456789.123456789,
	}
	for _, f := range floats {
		assertLineIdentity(t, actuary.Result{Index: 1, ID: "f", Question: actuary.QuestionTotalCost, TotalCost: tc(f)})
	}
	ids := []string{
		"", "plain", "a<b>&c", `quote"back\slash`, "tab\tnewline\nret\r",
		"ctrl\x01\x1f", "del\x7f", "utf8-ok-é世界",
		"bad-utf8-\xff\xfe", "jsonp-\u2028-\u2029-end", "emoji-\U0001F600",
		"\b\f",
	}
	for _, id := range ids {
		assertLineIdentity(t, actuary.Result{Index: 2, ID: id, Question: actuary.QuestionTotalCost, TotalCost: tc(1.5)})
	}
	// Dies carry strings and floats of their own.
	withDies := tc(10)
	withDies.RE.Dies = []actuary.DieCost{
		{Name: "x<&>", Node: "5nm", AreaMM2: 1e-8, Raw: 0.5, Yield: 0.9999999, KGD: 3},
		{Name: "y", Node: "7nm", AreaMM2: 400, Raw: 2, Yield: 1, KGD: 2.0000000000000004},
	}
	assertLineIdentity(t, actuary.Result{Index: 3, ID: "dies", Question: actuary.QuestionTotalCost, TotalCost: withDies})
	// Unknown scheme/flow values inside packaging force the fallback,
	// which errors exactly as encoding/json does.
	badScheme := tc(1)
	badScheme.RE.Packaging.Scheme = actuary.Scheme(99)
	assertLineIdentity(t, actuary.Result{Index: 4, ID: "bad-scheme", Question: actuary.QuestionTotalCost, TotalCost: badScheme})
	// Non-finite floats: both paths must fail identically.
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		assertLineIdentity(t, actuary.Result{Index: 5, ID: "nonfinite", Question: actuary.QuestionTotalCost, TotalCost: tc(f)})
	}
	// Unknown question: fallback, which errors like encoding/json.
	assertLineIdentity(t, actuary.Result{Index: 6, ID: "bad-q", Question: actuary.Question(42), TotalCost: tc(1)})
	// Non-fast shapes route through the reflective encoder untouched.
	assertLineIdentity(t, actuary.Result{Index: 7, ID: "quantity", Question: actuary.QuestionWafers, TotalCost: tc(1), Quantity: 5})
	assertLineIdentity(t, actuary.Result{Index: 8, Question: actuary.QuestionTotalCost})
}

// TestAppendResultLineRandomFloats fuzzes the float formatter against
// encoding/json across the full exponent range, including subnormals
// and exact powers of ten around both notation cutoffs.
func TestAppendResultLineRandomFloats(t *testing.T) {
	// A deterministic xorshift so the test needs no seed plumbing.
	state := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for i := 0; i < 5000; i++ {
		bits := next()
		f := math.Float64frombits(bits)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			continue
		}
		r := actuary.Result{Index: i, ID: "rf", Question: actuary.QuestionTotalCost,
			TotalCost: &actuary.TotalCost{RE: actuary.REBreakdown{RawChips: f}}}
		assertLineIdentity(t, r)
	}
	for exp := -30; exp <= 30; exp++ {
		f := math.Pow(10, float64(exp))
		r := actuary.Result{Index: exp, ID: "p10", Question: actuary.QuestionTotalCost,
			TotalCost: &actuary.TotalCost{RE: actuary.REBreakdown{RawChips: f, ChipDefects: -f}}}
		assertLineIdentity(t, r)
	}
}
