package client_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	actuary "chipletactuary"
	"chipletactuary/client"
)

// TestProbeMetricz: against a real actuaryd the probe takes the
// structured /v1/metricz path.
func TestProbeMetricz(t *testing.T) {
	remote, _ := newBackends(t)
	res, err := remote.Evaluate(context.Background(), []actuary.Request{{
		Question: actuary.QuestionTotalCost,
		System:   actuary.Monolithic("m", "7nm", 400, 1e6)}})
	if err != nil || res[0].Err != nil {
		t.Fatalf("evaluate: %v / %v", err, res[0].Err)
	}
	st, err := remote.Probe(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Source != "metricz" {
		t.Errorf("Source = %q, want metricz", st.Source)
	}
	if st.Workers < 1 {
		t.Errorf("Workers = %d, want at least 1", st.Workers)
	}
	if st.Requests != 1 {
		t.Errorf("Requests = %d, want 1", st.Requests)
	}
	snap, err := remote.Metricz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if snap.Session.Requests() != 1 {
		t.Errorf("Metricz requests = %d, want 1", snap.Session.Requests())
	}
}

// TestProbeFallsBackToProm: a daemon predating /v1/metricz (404)
// still yields a Status, parsed from the Prometheus text endpoint.
func TestProbeFallsBackToProm(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `# HELP actuary_workers Worker pool target width.
# TYPE actuary_workers gauge
actuary_workers 4
actuary_queue_depth 2
actuary_queue_depth_mean 1.5
actuary_in_flight 3
actuary_worker_utilization 0.75
actuary_requests_total{question="total-cost"} 10
actuary_requests_total{question="sweep-best"} 5
actuary_request_failures_total{question="total-cost"} 1
`)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c, err := client.Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Probe(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Source != "metrics" {
		t.Errorf("Source = %q, want metrics (prom fallback)", st.Source)
	}
	if st.Workers != 4 || st.QueueDepth != 2 || st.InFlight != 3 {
		t.Errorf("gauges = %d/%d/%d workers/depth/inflight, want 4/2/3",
			st.Workers, st.QueueDepth, st.InFlight)
	}
	if st.MeanQueueDepth != 1.5 || st.Utilization != 0.75 {
		t.Errorf("means = %v/%v depth/util, want 1.5/0.75", st.MeanQueueDepth, st.Utilization)
	}
	if st.Requests != 15 || st.Failures != 1 {
		t.Errorf("totals = %d/%d requests/failures, want 15/1 (labeled series summed)",
			st.Requests, st.Failures)
	}
}

// TestProbeErrors: transport failures surface as *client.ProbeError —
// the typed verdict fleet.Monitor classifies on — for Probe and Ping
// alike.
func TestProbeErrors(t *testing.T) {
	down, err := client.Dial("http://127.0.0.1:1")
	if err != nil {
		t.Fatal(err)
	}
	var pe *client.ProbeError
	if _, err := down.Probe(context.Background()); !errors.As(err, &pe) {
		t.Errorf("Probe error = %v, want *client.ProbeError", err)
	}
	if err := down.Ping(context.Background()); !errors.As(err, &pe) {
		t.Errorf("Ping error = %v, want *client.ProbeError", err)
	}
	// A daemon that answers with a server error is also a probe
	// failure, not a parse attempt.
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/metricz", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c, err := client.Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Probe(context.Background()); !errors.As(err, &pe) {
		t.Errorf("500 probe error = %v, want *client.ProbeError", err)
	}
}

// TestLocalProbe: the in-process backend reports straight from its
// session, no wire involved.
func TestLocalProbe(t *testing.T) {
	session, err := actuary.NewSession(actuary.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	local := client.Local(session)
	prober, ok := local.(client.Prober)
	if !ok {
		t.Fatal("client.Local does not implement client.Prober")
	}
	st, err := prober.Probe(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Source != "session" {
		t.Errorf("Source = %q, want session", st.Source)
	}
	if st.Workers != 2 {
		t.Errorf("Workers = %d, want 2", st.Workers)
	}
}
