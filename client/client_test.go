package client_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"chipletactuary"
	"chipletactuary/client"
	"chipletactuary/server"
)

// newBackends returns a remote client against a fresh httptest
// actuaryd and a Local backend over an identically configured
// session.
func newBackends(t *testing.T) (remote *client.Client, local client.Backend) {
	t.Helper()
	session, err := actuary.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(session).Handler())
	t.Cleanup(ts.Close)
	remote, err = client.Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	localSession, err := actuary.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	return remote, client.Local(localSession)
}

func TestDialValidation(t *testing.T) {
	for _, bad := range []string{"", "::::", "ftp://host", "http://"} {
		if _, err := client.Dial(bad); err == nil {
			t.Errorf("Dial(%q) should fail", bad)
		}
	}
	if _, err := client.Dial("http://localhost:8833/"); err != nil {
		t.Errorf("Dial with trailing slash: %v", err)
	}
}

func testRequests(t *testing.T) []actuary.Request {
	t.Helper()
	ch, err := actuary.PartitionEqual("ch", "7nm", 600, 2, actuary.MCM, actuary.D2DFraction(0.10), 1e6)
	if err != nil {
		t.Fatal(err)
	}
	return []actuary.Request{
		{ID: "tc", Question: actuary.QuestionTotalCost, System: actuary.Monolithic("m", "7nm", 500, 2e6)},
		{ID: "pay", Question: actuary.QuestionCrossoverQuantity,
			Incumbent: actuary.Monolithic("inc", "7nm", 600, 1), Challenger: ch},
		{ID: "bad", Question: actuary.QuestionTotalCost, System: actuary.Monolithic("x", "2nm", 100, 1e6)},
	}
}

// TestEvaluateRemoteMatchesLocal proves the one-interface promise:
// the same requests through client.Dial and client.Local yield the
// same wire results.
func TestEvaluateRemoteMatchesLocal(t *testing.T) {
	remote, local := newBackends(t)
	reqs := testRequests(t)
	got, err := remote.Evaluate(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := local.Evaluate(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range want {
		gj, _ := json.Marshal(got[i])
		wj, _ := json.Marshal(want[i])
		if string(gj) != string(wj) {
			t.Errorf("result %d differs:\nremote: %s\n local: %s", i, gj, wj)
		}
	}
	if got[2].Err == nil {
		t.Fatal("bad request should fail")
	}
	if ae, ok := actuary.AsError(got[2].Err); !ok || ae.Code != actuary.ErrUnknownNode {
		t.Errorf("remote error lost its code: %v", got[2].Err)
	}
}

func testScenario() actuary.ScenarioConfig {
	return actuary.ScenarioConfig{
		Version: 2, Name: "remote", Questions: []string{"total-cost"},
		Sweeps: []actuary.SweepConfig{{
			Name: "s", Node: "7nm", Scheme: "MCM", D2DFraction: 0.10, Quantity: 2e6,
			AreasMM2: []float64{300, 500}, Counts: []int{1, 2, 3},
		}},
	}
}

func drainIDs(t *testing.T, ch <-chan actuary.Result) []string {
	t.Helper()
	var ids []string
	for res := range ch {
		if res.Err != nil {
			t.Fatalf("result %q failed: %v", res.ID, res.Err)
		}
		ids = append(ids, res.ID)
	}
	sort.Strings(ids)
	return ids
}

func TestStreamRemoteMatchesLocal(t *testing.T) {
	remote, local := newBackends(t)
	cfg := testScenario()
	remoteCh, err := remote.Stream(context.Background(), client.StreamRequest{Scenario: cfg})
	if err != nil {
		t.Fatal(err)
	}
	localCh, err := local.Stream(context.Background(), client.StreamRequest{Scenario: cfg})
	if err != nil {
		t.Fatal(err)
	}
	gotIDs := drainIDs(t, remoteCh)
	wantIDs := drainIDs(t, localCh)
	if len(gotIDs) != 6 {
		t.Fatalf("streamed %d results, want 6", len(gotIDs))
	}
	for i := range wantIDs {
		if gotIDs[i] != wantIDs[i] {
			t.Fatalf("remote IDs %v != local IDs %v", gotIDs, wantIDs)
		}
	}
}

// TestStreamAcceptsV1LoadedScenario guards the Backend promise for
// configs read from v1 documents: ReadScenarioConfig marks them
// Version 1, and the client must normalize that before shipping or
// the server rejects what Local streams happily.
func TestStreamAcceptsV1LoadedScenario(t *testing.T) {
	remote, local := newBackends(t)
	v1 := `{"name":"epyc-like","scheme":"MCM","quantity":2000000,
	        "chiplets":[{"name":"ccd","node":"7nm","module_area_mm2":67,"d2d_fraction":0.10,"count":8}]}`
	cfg, err := actuary.ReadScenarioConfig(strings.NewReader(v1))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Version != 1 {
		t.Fatalf("fixture did not load as v1 (version %d)", cfg.Version)
	}
	remoteCh, err := remote.Stream(context.Background(), client.StreamRequest{Scenario: cfg})
	if err != nil {
		t.Fatalf("remote backend rejected a v1-loaded scenario: %v", err)
	}
	localCh, err := local.Stream(context.Background(), client.StreamRequest{Scenario: cfg})
	if err != nil {
		t.Fatal(err)
	}
	gotIDs := drainIDs(t, remoteCh)
	wantIDs := drainIDs(t, localCh)
	if len(gotIDs) != len(wantIDs) || len(gotIDs) == 0 {
		t.Fatalf("remote IDs %v != local IDs %v", gotIDs, wantIDs)
	}
}

func TestStreamServerRejection(t *testing.T) {
	remote, _ := newBackends(t)
	_, err := remote.Stream(context.Background(), client.StreamRequest{Scenario: actuary.ScenarioConfig{Version: 2, Name: "empty"}})
	if err == nil {
		t.Fatal("empty scenario should be rejected")
	}
	ae, ok := actuary.AsError(err)
	if !ok || ae.Code != actuary.ErrInvalidConfig {
		t.Errorf("rejection lost its code: %v", err)
	}
}

// TestStreamTransportFailure cuts the NDJSON stream mid-line and
// expects one in-band transport-error result.
func TestStreamTransportFailure(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		io.WriteString(w, "{\"index\":0,\"question\":\"total-cost\"}\n")
		io.WriteString(w, "{\"index\":1,\"question\":  TRUNCATED")
	}))
	defer ts.Close()
	c, err := client.Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := c.Stream(context.Background(), client.StreamRequest{Scenario: testScenario()})
	if err != nil {
		t.Fatal(err)
	}
	var results []actuary.Result
	for res := range ch {
		results = append(results, res)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2 (one good, one transport error)", len(results))
	}
	if results[0].Err != nil {
		t.Errorf("first result should be clean: %v", results[0].Err)
	}
	last := results[len(results)-1]
	ae, ok := actuary.AsError(last.Err)
	if !ok || ae.Code != actuary.ErrTransport {
		t.Errorf("broken stream should end with a transport error, got %v", last.Err)
	}
}

func TestStreamCancelStopsDelivery(t *testing.T) {
	remote, _ := newBackends(t)
	ctx, cancel := context.WithCancel(context.Background())
	cfg := testScenario()
	cfg.Sweeps[0].AreaRange = &actuary.AreaRangeConfig{LoMM2: 100, HiMM2: 900, StepMM2: 1}
	cfg.Sweeps[0].AreasMM2 = nil
	ch, err := remote.Stream(ctx, client.StreamRequest{Scenario: cfg})
	if err != nil {
		t.Fatal(err)
	}
	<-ch // first result arrived; the stream is live
	cancel()
	for range ch {
	} // must close promptly instead of delivering the whole sweep
}

func TestQuestionsAndPing(t *testing.T) {
	remote, _ := newBackends(t)
	if err := remote.Ping(context.Background()); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	infos, err := remote.Questions(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(actuary.Questions()) {
		t.Errorf("remote advertises %d questions, want %d", len(infos), len(actuary.Questions()))
	}

	down, err := client.Dial("http://127.0.0.1:1")
	if err != nil {
		t.Fatal(err)
	}
	if err := down.Ping(context.Background()); err == nil {
		t.Error("Ping against a dead port should fail")
	} else if ae, ok := actuary.AsError(err); !ok || ae.Code != actuary.ErrTransport {
		t.Errorf("dead-port error should classify transport: %v", err)
	}
}

// TestStreamResumeParity checks that a scenario "resume" field means
// the same thing on both backends: ordered delivery from the resume
// point, indexes continuing where the original stream stopped, and
// identical result sequences remote vs local.
func TestStreamResumeParity(t *testing.T) {
	remote, local := newBackends(t)
	cfg := testScenario()
	cfg.Resume = &actuary.StreamResume{NextIndex: 0}

	ordered := func(b client.Backend, next int) []actuary.Result {
		t.Helper()
		cfg.Resume = &actuary.StreamResume{NextIndex: next}
		ch, err := b.Stream(context.Background(), client.StreamRequest{Scenario: cfg})
		if err != nil {
			t.Fatal(err)
		}
		var out []actuary.Result
		for r := range ch {
			if r.Err != nil {
				t.Fatalf("result %q failed: %v", r.ID, r.Err)
			}
			out = append(out, r)
		}
		return out
	}
	fullRemote := ordered(remote, 0)
	fullLocal := ordered(local, 0)
	if len(fullRemote) != 6 || len(fullLocal) != 6 {
		t.Fatalf("streams yield %d/%d results, want 6", len(fullRemote), len(fullLocal))
	}
	for i := range fullRemote {
		if fullRemote[i].Index != i || fullLocal[i].Index != i {
			t.Fatalf("position %d carries indexes %d (remote) / %d (local) — resumable streams must be ordered",
				i, fullRemote[i].Index, fullLocal[i].Index)
		}
		if fullRemote[i].ID != fullLocal[i].ID {
			t.Fatalf("position %d: remote %q != local %q", i, fullRemote[i].ID, fullLocal[i].ID)
		}
	}
	for _, b := range []client.Backend{remote, local} {
		tail := ordered(b, 4)
		if len(tail) != 2 || tail[0].Index != 4 || tail[1].Index != 5 {
			t.Fatalf("resume at 4 yields %d results starting at %v", len(tail), tail)
		}
		if tail[0].ID != fullLocal[4].ID || tail[1].ID != fullLocal[5].ID {
			t.Fatalf("resumed tail %q/%q != original %q/%q",
				tail[0].ID, tail[1].ID, fullLocal[4].ID, fullLocal[5].ID)
		}
	}
	// Local rejects a negative resume index just like the server does.
	cfg.Resume = &actuary.StreamResume{NextIndex: -3}
	if _, err := local.Stream(context.Background(), client.StreamRequest{Scenario: cfg}); err == nil {
		t.Fatal("local backend accepted a negative resume index")
	}
}

// TestStreamRequestFields exercises the request-level delivery fields
// against both backend kinds: Shard stripes, Resume+Ordered skip and
// order, and every two-level conflict is rejected up front.
func TestStreamRequestFields(t *testing.T) {
	remote, local := newBackends(t)
	cfg := testScenario()
	for name, b := range map[string]client.Backend{"remote": remote, "local": local} {
		// Request-level resume behaves exactly like the scenario field.
		ch, err := b.Stream(context.Background(), client.StreamRequest{Scenario: cfg, Resume: 4})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var tail []actuary.Result
		for r := range ch {
			if r.Err != nil {
				t.Fatalf("%s: result %q failed: %v", name, r.ID, r.Err)
			}
			tail = append(tail, r)
		}
		if len(tail) != 2 || tail[0].Index != 4 || tail[1].Index != 5 {
			t.Fatalf("%s: Resume:4 yields %+v", name, tail)
		}
		// Request-level sharding stripes the same six results.
		union := make(map[string]int)
		for i := 0; i < 2; i++ {
			ch, err := b.Stream(context.Background(),
				client.StreamRequest{Scenario: cfg, Shard: client.ShardSpec{Index: i, Count: 2}})
			if err != nil {
				t.Fatalf("%s shard %d: %v", name, i, err)
			}
			for r := range ch {
				if r.Err != nil {
					t.Fatalf("%s shard %d: result %q failed: %v", name, i, r.ID, r.Err)
				}
				union[r.ID]++
			}
		}
		if len(union) != 6 {
			t.Fatalf("%s: shard union holds %d IDs, want 6", name, len(union))
		}
		for id, n := range union {
			if n != 1 {
				t.Fatalf("%s: %q owned by %d shards", name, id, n)
			}
		}
	}
	// Conflicts and invalid fields are rejected before any evaluation.
	sharded := cfg
	sharded.ShardIndex, sharded.ShardCount = 0, 2
	resumed := cfg
	resumed.Resume = &actuary.StreamResume{NextIndex: 1}
	bad := map[string]client.StreamRequest{
		"shard conflict":   {Scenario: sharded, Shard: client.ShardSpec{Index: 1, Count: 2}},
		"resume conflict":  {Scenario: resumed, Resume: 2},
		"ordered conflict": {Scenario: resumed, Ordered: true},
		"negative resume":  {Scenario: cfg, Resume: -1},
	}
	for name, req := range bad {
		if _, err := local.Stream(context.Background(), req); err == nil {
			t.Errorf("local accepted %s", name)
		}
		if _, err := remote.Stream(context.Background(), req); err == nil {
			t.Errorf("remote accepted %s", name)
		}
	}
}

// TestStreamScenarioWrapper keeps the deprecated call shape working:
// StreamScenario(ctx, b, cfg) is Stream with a bare StreamRequest,
// scenario-embedded fields honored as before.
func TestStreamScenarioWrapper(t *testing.T) {
	_, local := newBackends(t)
	cfg := testScenario()
	cfg.Resume = &actuary.StreamResume{NextIndex: 4}
	ch, err := client.StreamScenario(context.Background(), local, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out []actuary.Result
	for r := range ch {
		if r.Err != nil {
			t.Fatalf("result %q failed: %v", r.ID, r.Err)
		}
		out = append(out, r)
	}
	if len(out) != 2 || out[0].Index != 4 {
		t.Fatalf("wrapper stream yields %+v", out)
	}
}
