// Package client is the typed Go client for the actuaryd service: it
// speaks the wire protocol of the root package over HTTP and hands
// back the same Request/Result types a local Session produces, so a
// program can switch between in-process and remote evaluation through
// one interface (Backend).
//
//	c, err := client.Dial("http://localhost:8833")
//	results, err := c.Evaluate(ctx, reqs)
//	ch, err := c.Stream(ctx, client.StreamRequest{Scenario: scenario})
//
// Transport failures are classified actuary.ErrTransport: batch calls
// return them as the call's error; a stream that dies mid-flight
// delivers one final in-band Result carrying the transport error, so
// aggregators draining the channel observe the failure instead of a
// silently short stream.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"chipletactuary"
)

// Backend is the one interface for local and remote evaluation.
// *Client implements it over HTTP; Local wraps an in-process Session.
type Backend interface {
	// Evaluate answers a batch, results in input order.
	Evaluate(ctx context.Context, reqs []actuary.Request) ([]actuary.Result, error)
	// Stream compiles the request's scenario and emits results as they
	// complete (or in index order, when the request asks for it). The
	// channel closes when the stream is exhausted (or the context is
	// canceled); failures arrive in-band on Result.Err.
	Stream(ctx context.Context, req StreamRequest) (<-chan actuary.Result, error)
}

// ShardSpec selects one stripe of a scenario's request stream:
// stripe Index of Count total. The zero value means "unsharded".
type ShardSpec struct {
	Index int
	Count int
}

// StreamRequest is the one streaming request shape every Backend
// takes: the scenario plus the per-call delivery concerns — sharding,
// resumption and ordering — that used to be smuggled through scenario
// fields by each caller separately. The zero value of everything but
// Scenario streams the whole scenario unordered, exactly as the old
// Stream(ctx, cfg) did.
//
// Shard, Resume and Ordered are request-level alternatives to the
// scenario's own shard_index/shard_count/resume fields; a scenario
// that already carries them conflicts with a request that sets them
// too, and the conflict is rejected rather than silently resolved.
type StreamRequest struct {
	// Scenario is the workload to compile and stream.
	Scenario actuary.ScenarioConfig
	// Shard, when Count > 0, streams only stripe Index of Count.
	Shard ShardSpec
	// Resume skips the first Resume requests without evaluating them
	// and numbers the survivors from Resume — the stream-position
	// contract StreamCheckpoint.Next is built on. Resume > 0 implies
	// ordered delivery.
	Resume int
	// Ordered delivers results in source-index order even when Resume
	// is zero — what a consumer diffing or checkpointing the stream
	// needs from the first line.
	Ordered bool
}

// config folds the request-level delivery fields into the scenario's
// wire form — the shape /v1/stream and ScenarioConfig.Source already
// honor — rejecting conflicts between the two levels.
func (r StreamRequest) config() (actuary.ScenarioConfig, error) {
	cfg := r.Scenario
	if r.Shard.Count > 0 || r.Shard.Index != 0 {
		if cfg.ShardIndex != 0 || cfg.ShardCount != 0 {
			return cfg, fmt.Errorf("client: StreamRequest.Shard conflicts with the scenario's own shard_index/shard_count")
		}
		cfg.ShardIndex = r.Shard.Index
		cfg.ShardCount = r.Shard.Count
	}
	if r.Resume < 0 {
		return cfg, fmt.Errorf("client: StreamRequest.Resume must not be negative, got %d", r.Resume)
	}
	if r.Resume > 0 || r.Ordered {
		if cfg.Resume != nil {
			return cfg, fmt.Errorf("client: StreamRequest.Resume/Ordered conflicts with the scenario's own resume field")
		}
		cfg.Resume = &actuary.StreamResume{NextIndex: r.Resume}
	}
	return cfg, nil
}

// StreamScenario streams a bare scenario through any Backend — the
// pre-StreamRequest call shape, kept so existing callers migrate by
// search-and-replace instead of redesign. Scenario-embedded shard and
// resume fields are honored exactly as before.
//
// Deprecated: call b.Stream(ctx, StreamRequest{Scenario: cfg})
// directly; put sharding, resumption and ordering in the
// StreamRequest fields instead of the scenario document.
func StreamScenario(ctx context.Context, b Backend, cfg actuary.ScenarioConfig) (<-chan actuary.Result, error) {
	return b.Stream(ctx, StreamRequest{Scenario: cfg})
}

// Client speaks the wire protocol to one actuaryd base URL.
type Client struct {
	base string
	hc   *http.Client
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the HTTP client (timeouts, transports,
// middleware). The default is http.DefaultClient; streaming responses
// hold the connection open, so per-request timeouts belong on the
// context, not the client.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// Dial validates the base URL ("http://host:port") and returns a
// Client. No connection is made — use Ping for a liveness check.
func Dial(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: parsing base URL: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("client: base URL %q needs an http or https scheme", baseURL)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("client: base URL %q has no host", baseURL)
	}
	c := &Client{base: strings.TrimRight(u.String(), "/"), hc: http.DefaultClient}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// transportError wraps a client-side failure with the ErrTransport
// code so callers can route on the taxonomy.
func transportError(err error) error {
	return &actuary.Error{Code: actuary.ErrTransport, Index: -1, Question: -1, Err: err}
}

// serverError decodes a non-200 response into an error, preserving
// the server's structured code when the body carries an
// actuary.ErrorBody.
func serverError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var eb actuary.ErrorBody
	if err := json.Unmarshal(body, &eb); err == nil && eb.Error.Code != "" {
		code, perr := actuary.ParseErrorCode(eb.Error.Code)
		if perr != nil {
			code = actuary.ErrTransport
		}
		return &actuary.Error{Code: code, Index: -1, Question: -1,
			Err: fmt.Errorf("server: %s (HTTP %d)", eb.Error.Message, resp.StatusCode)}
	}
	return transportError(fmt.Errorf("server: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body)))
}

// post issues one POST with a JSON body.
func (c *Client) post(ctx context.Context, path, contentType string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, transportError(err)
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, transportError(err)
	}
	return resp, nil
}

// get issues one GET and maps non-200 statuses to structured errors.
func (c *Client) get(ctx context.Context, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, transportError(err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, transportError(err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, serverError(resp)
	}
	return resp, nil
}

// Evaluate implements Backend over POST /v1/evaluate.
func (c *Client) Evaluate(ctx context.Context, reqs []actuary.Request) ([]actuary.Result, error) {
	body, err := json.Marshal(reqs)
	if err != nil {
		return nil, transportError(fmt.Errorf("encoding requests: %w", err))
	}
	resp, err := c.post(ctx, "/v1/evaluate", "application/json", body)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, serverError(resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, transportError(err)
	}
	results, err := actuary.DecodeResults(data)
	if err != nil {
		return nil, transportError(err)
	}
	return results, nil
}

// Stream implements Backend over POST /v1/stream: the request folds
// into the scenario's wire form, ships to the server, compiles there,
// and results arrive on the returned channel as NDJSON lines
// complete. The caller must drain the channel or cancel ctx; a
// transport failure mid-stream is delivered as a final in-band Result
// with an ErrTransport error.
func (c *Client) Stream(ctx context.Context, sr StreamRequest) (<-chan actuary.Result, error) {
	cfg, err := sr.config()
	if err != nil {
		return nil, err
	}
	// A scenario loaded from a v1 document carries Version 1 as a
	// provenance marker, but its in-memory shape is the v2 schema —
	// re-serializing it as "version": 1 would make the server reject
	// what the Local backend happily streams. Normalize before
	// shipping so both backends accept exactly the same configs.
	if cfg.Version == 1 {
		cfg.Version = 2
	}
	body, err := json.Marshal(cfg)
	if err != nil {
		return nil, transportError(fmt.Errorf("encoding scenario: %w", err))
	}
	resp, err := c.post(ctx, "/v1/stream", "application/json", body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, serverError(resp)
	}
	out := make(chan actuary.Result)
	go func() {
		defer close(out)
		defer resp.Body.Close()
		// NDJSON is a stream of self-delimiting JSON values, so a
		// json.Decoder reads it directly — no line scanner, and no
		// arbitrary cap on how large one result (a sweep-best answer
		// with a huge top-K, say) may be.
		dec := json.NewDecoder(resp.Body)
		for {
			var res actuary.Result
			if err := dec.Decode(&res); err != nil {
				// EOF ends the stream; anything else is a broken
				// transport unless the caller caused it by canceling.
				if errors.Is(err, io.EOF) || ctx.Err() != nil {
					return
				}
				select {
				case out <- actuary.Result{Index: -1, Err: transportError(fmt.Errorf("decoding stream: %w", err))}:
				case <-ctx.Done():
				}
				return
			}
			select {
			case out <- res:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out, nil
}

// Questions fetches the server's evaluation-API self-description.
func (c *Client) Questions(ctx context.Context) ([]actuary.QuestionInfo, error) {
	resp, err := c.get(ctx, "/v1/questions")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var infos []actuary.QuestionInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		return nil, transportError(err)
	}
	return infos, nil
}

// ProbeError marks a health-probe failure: the backend could not be
// reached, or answered the probe malformed. The wrapped error keeps
// its taxonomy (a probe-time transport failure still classifies
// actuary.ErrTransport), but the type lets schedulers distinguish
// "never came up" — a Ping or Probe that failed — from a transport
// error that killed real mid-sweep work.
type ProbeError struct {
	// Err is the underlying failure.
	Err error
}

// Error implements error.
func (e *ProbeError) Error() string { return "probe: " + e.Err.Error() }

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *ProbeError) Unwrap() error { return e.Err }

// Prober is the optional health surface of a Backend: one probe
// observation of the backend's liveness and load. *Client and the
// Local wrapper implement it; fleet.Monitor consumes it. Probe errors
// are *ProbeError values.
type Prober interface {
	Probe(ctx context.Context) (Status, error)
}

// Status is one probe observation of a backend: scalars a scheduler
// can score, whichever probe surface produced them.
type Status struct {
	// Source names the surface the observation came from: "metricz"
	// (GET /v1/metricz), "metrics" (Prometheus text fallback) or
	// "session" (an in-process Session).
	Source string
	// Workers is the backend's worker-pool target width (0 when the
	// surface does not report it).
	Workers int
	// QueueDepth and InFlight are the instantaneous back-pressure
	// gauges; MeanQueueDepth is the mean depth observed at enqueue.
	QueueDepth     int64
	InFlight       int64
	MeanQueueDepth float64
	// Utilization is the busy share of worker lifetime, in [0, 1].
	Utilization float64
	// Requests and Failures count evaluated and failed requests.
	Requests int64
	Failures int64
}

// Ping checks GET /healthz. Failures are typed *ProbeError (wrapping
// the transport or server error) so callers can tell a failed
// liveness check from a failure during real work.
func (c *Client) Ping(ctx context.Context) error {
	resp, err := c.get(ctx, "/healthz")
	if err != nil {
		return &ProbeError{Err: err}
	}
	resp.Body.Close()
	return nil
}

// Metricz fetches GET /v1/metricz: the backend's counters as one
// strict-decoded snapshot.
func (c *Client) Metricz(ctx context.Context) (*actuary.MetricsSnapshot, error) {
	resp, err := c.get(ctx, "/v1/metricz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, transportError(err)
	}
	var snap actuary.MetricsSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, transportError(err)
	}
	return &snap, nil
}

// Probe implements Prober over HTTP. It prefers GET /v1/metricz (one
// strict-decoded JSON snapshot); against a daemon predating that
// endpoint (a clean 404/405) it falls back to parsing the Prometheus
// text of GET /metrics. Failures are *ProbeError values.
func (c *Client) Probe(ctx context.Context) (Status, error) {
	resp, err := c.fetch(ctx, "/v1/metricz")
	if err != nil {
		return Status{}, &ProbeError{Err: err}
	}
	if resp.StatusCode == http.StatusNotFound || resp.StatusCode == http.StatusMethodNotAllowed {
		// An older daemon: /v1/metricz does not exist there, but the
		// Prometheus text carries enough to score the backend.
		resp.Body.Close()
		return c.probeProm(ctx)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Status{}, &ProbeError{Err: serverError(resp)}
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return Status{}, &ProbeError{Err: transportError(err)}
	}
	var snap actuary.MetricsSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return Status{}, &ProbeError{Err: transportError(err)}
	}
	return Status{
		Source:         "metricz",
		Workers:        snap.Workers,
		QueueDepth:     snap.Session.QueueDepth,
		InFlight:       snap.Session.InFlight,
		MeanQueueDepth: snap.Session.MeanQueueDepth(),
		Utilization:    snap.Session.Utilization(),
		Requests:       snap.Session.Requests(),
		Failures:       snap.Session.Failures(),
	}, nil
}

// probeProm scores a backend from its Prometheus text — the fallback
// probe surface for daemons without /v1/metricz.
func (c *Client) probeProm(ctx context.Context) (Status, error) {
	resp, err := c.fetch(ctx, "/metrics")
	if err != nil {
		return Status{}, &ProbeError{Err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Status{}, &ProbeError{Err: serverError(resp)}
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return Status{}, &ProbeError{Err: transportError(err)}
	}
	st := Status{Source: "metrics"}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, value, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		// Labeled series ("actuary_requests_total{question=...}") sum
		// into their family total.
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(value), 64)
		if err != nil {
			continue
		}
		switch name {
		case "actuary_workers":
			st.Workers = int(v)
		case "actuary_queue_depth":
			st.QueueDepth = int64(v)
		case "actuary_queue_depth_mean":
			st.MeanQueueDepth = v
		case "actuary_in_flight":
			st.InFlight = int64(v)
		case "actuary_worker_utilization":
			st.Utilization = v
		case "actuary_requests_total":
			st.Requests += int64(v)
		case "actuary_request_failures_total":
			st.Failures += int64(v)
		}
	}
	return st, nil
}

// fetch issues one GET and returns the response whatever its status —
// Probe needs the status code to pick its fallback, which the
// error-mapping get() hides.
func (c *Client) fetch(ctx context.Context, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, transportError(err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, transportError(err)
	}
	return resp, nil
}

// local adapts an in-process Session to the Backend interface.
type local struct {
	s *actuary.Session
}

// Local wraps a Session so in-process evaluation satisfies the same
// Backend interface the remote client does — the switch between
// linking the library and calling a service is one constructor.
func Local(s *actuary.Session) Backend { return local{s: s} }

// Evaluate implements Backend on the wrapped session.
func (l local) Evaluate(ctx context.Context, reqs []actuary.Request) ([]actuary.Result, error) {
	return l.s.Evaluate(ctx, reqs), nil
}

// Stream implements Backend: the scenario compiles locally and
// streams through the session's worker pool. Resumption means the
// same thing it means on /v1/stream — index-ordered delivery from the
// resume point, prefix regenerated but not re-evaluated — so a
// consumer checkpointing a stream need not care which backend serves
// it.
func (l local) Stream(ctx context.Context, sr StreamRequest) (<-chan actuary.Result, error) {
	cfg, err := sr.config()
	if err != nil {
		return nil, err
	}
	next, ordered, err := cfg.ResumeIndex()
	if err != nil {
		return nil, err
	}
	src, err := cfg.Source()
	if err != nil {
		return nil, err
	}
	spec := actuary.StreamSpec{Ordered: ordered}
	if ordered {
		spec.ResumeAt = next
	}
	return l.s.Stream(ctx, src, spec.Options()...)
}

// Probe implements Prober on the wrapped session: an in-process
// backend is always reachable, so the observation is a direct
// Session.Metrics read.
func (l local) Probe(context.Context) (Status, error) {
	m := l.s.Metrics()
	return Status{
		Source:         "session",
		Workers:        l.s.Workers(),
		QueueDepth:     m.QueueDepth,
		InFlight:       m.InFlight,
		MeanQueueDepth: m.MeanQueueDepth(),
		Utilization:    m.Utilization(),
		Requests:       m.Requests(),
		Failures:       m.Failures(),
	}, nil
}
