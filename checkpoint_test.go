package actuary_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"chipletactuary"
)

// mustJSON renders v through the canonical wire marshalers — the
// byte-identity yardstick of the checkpoint tests.
func mustJSON(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(data)
}

// TestSweepCheckpointResumeProperty is the checkpoint round-trip
// property test: for random grids, random interrupt points and shard
// counts 1..3, a walk resumed from a mid-run checkpoint — after a
// trip through the wire form, as a real resume takes — produces a
// SweepBest byte-identical to the uninterrupted walk's.
func TestSweepCheckpointResumeProperty(t *testing.T) {
	s, err := actuary.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	nodePool := []string{"5nm", "7nm", "12nm", "28nm"}
	schemePool := []actuary.Scheme{actuary.MCM, actuary.TwoPointFiveD, actuary.InFO}
	pick := func(n int) int { return 1 + rng.Intn(n) }
	ctx := context.Background()
	for trial := 0; trial < 6; trial++ {
		grid := &actuary.SweepGrid{
			Name:       fmt.Sprintf("cp%d", trial),
			Nodes:      append([]string(nil), nodePool[:pick(len(nodePool))]...),
			Schemes:    append([]actuary.Scheme(nil), schemePool[:pick(len(schemePool))]...),
			Quantities: []float64{1e5, 1e6}[:pick(2)],
			D2D:        actuary.D2DFraction(0.10),
		}
		for i := 0; i < pick(4); i++ {
			grid.AreasMM2 = append(grid.AreasMM2, 150+float64(i)*240) // up to 870: some prune
		}
		for k := 1; k <= pick(5); k++ {
			grid.Counts = append(grid.Counts, k)
		}
		for n := 1; n <= 3; n++ {
			req := actuary.Request{Question: actuary.QuestionSweepBest, Grid: grid, TopK: 3}
			if n > 1 {
				req.ShardIndex, req.ShardCount = rng.Intn(n), n
			}
			// Reference: the same request through the ordinary batch path.
			want := s.Evaluate(ctx, []actuary.Request{req})[0]
			if want.Err != nil {
				t.Fatalf("trial %d n=%d: reference failed: %v", trial, n, want.Err)
			}

			// Collect every checkpoint a full checkpointed walk emits.
			var saved []*actuary.SweepCheckpoint
			got, err := s.SweepBestCheckpointed(ctx, req, nil, 2,
				func(cp *actuary.SweepCheckpoint) error {
					data, err := json.Marshal(cp)
					if err != nil {
						return err
					}
					back := new(actuary.SweepCheckpoint)
					if err := json.Unmarshal(data, back); err != nil {
						return err
					}
					saved = append(saved, back)
					return nil
				})
			if err != nil {
				t.Fatalf("trial %d n=%d: checkpointed walk failed: %v", trial, n, err)
			}
			if mustJSON(t, got) != mustJSON(t, want.SweepBest) {
				t.Fatalf("trial %d n=%d: fresh checkpointed walk diverged from Evaluate", trial, n)
			}
			if len(saved) == 0 {
				t.Fatalf("trial %d n=%d: walk emitted no checkpoints", trial, n)
			}

			// Resume from a random interrupt point (and from the very
			// first and last snapshots — the boundary cases).
			picks := map[int]bool{0: true, len(saved) - 1: true, rng.Intn(len(saved)): true}
			for i := range picks {
				resumed, err := s.SweepBestCheckpointed(ctx, req, saved[i], 3, nil)
				if err != nil {
					t.Fatalf("trial %d n=%d: resume from checkpoint %d: %v", trial, n, i, err)
				}
				if mustJSON(t, resumed) != mustJSON(t, want.SweepBest) {
					t.Fatalf("trial %d n=%d: resume from checkpoint %d diverged:\n got %s\nwant %s",
						trial, n, i, mustJSON(t, resumed), mustJSON(t, want.SweepBest))
				}
			}
		}
	}
}

// TestSweepCheckpointCarriesFailures checks that the first-failure
// bookkeeping survives a checkpoint boundary: interrupting after the
// failing candidate and resuming reports the same failure (code and
// position) an uninterrupted walk does.
func TestSweepCheckpointCarriesFailures(t *testing.T) {
	s, err := actuary.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	grid := &actuary.SweepGrid{
		Name:       "failing",
		Nodes:      []string{"nope", "5nm"}, // unknown node fails every "nope" point
		Schemes:    []actuary.Scheme{actuary.MCM},
		AreasMM2:   []float64{400},
		Counts:     []int{1, 2, 3},
		Quantities: []float64{1e6},
	}
	req := actuary.Request{Question: actuary.QuestionSweepBest, Grid: grid, TopK: 2}
	ctx := context.Background()
	want := s.Evaluate(ctx, []actuary.Request{req})[0]
	if want.Err != nil {
		t.Fatal(want.Err)
	}
	var saved []*actuary.SweepCheckpoint
	if _, err := s.SweepBestCheckpointed(ctx, req, nil, 1, func(cp *actuary.SweepCheckpoint) error {
		data, _ := json.Marshal(cp)
		back := new(actuary.SweepCheckpoint)
		if err := json.Unmarshal(data, back); err != nil {
			return err
		}
		saved = append(saved, back)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Resume from a snapshot past the failing stretch: FirstFailure
	// crossed the checkpoint in the structured form.
	last := saved[len(saved)-1]
	if last.FirstFailure == nil {
		t.Fatal("checkpoint after the failing candidates lost FirstFailure")
	}
	resumed, err := s.SweepBestCheckpointed(ctx, req, last, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Infeasible != want.SweepBest.Infeasible ||
		resumed.FirstFailureCandidate != want.SweepBest.FirstFailureCandidate {
		t.Fatalf("resumed failure accounting (%d infeasible, candidate %d) != uninterrupted (%d, %d)",
			resumed.Infeasible, resumed.FirstFailureCandidate,
			want.SweepBest.Infeasible, want.SweepBest.FirstFailureCandidate)
	}
	ae, ok := actuary.AsError(resumed.FirstFailure)
	if !ok || ae.Code != actuary.ErrUnknownNode {
		t.Fatalf("resumed FirstFailure lost its classification: %v", resumed.FirstFailure)
	}
}

// TestSweepCheckpointRejects covers the resume guard rails: a
// checkpoint from another workload, a corrupt cursor, and a failing
// save callback.
func TestSweepCheckpointRejects(t *testing.T) {
	s, err := actuary.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	grid := testGrid([]float64{400, 800}, []int{1, 2, 4})
	req := actuary.Request{Question: actuary.QuestionSweepBest, Grid: &grid, TopK: 2}

	var cp *actuary.SweepCheckpoint
	if _, err := s.SweepBestCheckpointed(ctx, req, nil, 1, func(c *actuary.SweepCheckpoint) error {
		if cp == nil {
			data, _ := json.Marshal(c)
			cp = new(actuary.SweepCheckpoint)
			return json.Unmarshal(data, cp)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Same grid, different top-K bound: a different workload.
	other := req
	other.TopK = 5
	if _, err := s.SweepBestCheckpointed(ctx, other, cp, 1, nil); !errors.Is(err, actuary.ErrCheckpointMismatch) {
		t.Fatalf("resume with a different top-K: %v, want ErrCheckpointMismatch", err)
	}
	// A cursor outside the grid.
	bad := *cp
	bad.Cursor.Candidate = grid.Size() + 7
	if _, err := s.SweepBestCheckpointed(ctx, req, &bad, 1, nil); !errors.Is(err, actuary.ErrCheckpointMismatch) {
		t.Fatalf("resume past the grid: %v, want ErrCheckpointMismatch", err)
	}
	// Aggregator state no live run could have produced.
	bad = *cp
	bad.Top = append(append([]actuary.SweepPoint(nil), cp.Top...), cp.Top...)
	for len(bad.Top) <= req.TopK {
		bad.Top = append(bad.Top, bad.Top...)
	}
	if _, err := s.SweepBestCheckpointed(ctx, req, &bad, 1, nil); !errors.Is(err, actuary.ErrCheckpointMismatch) {
		t.Fatalf("resume with an over-full top list: %v, want ErrCheckpointMismatch", err)
	}
	// A save error aborts the walk.
	boom := errors.New("disk full")
	if _, err := s.SweepBestCheckpointed(ctx, req, nil, 1, func(*actuary.SweepCheckpoint) error {
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("failing save: %v, want the save error", err)
	}
	// Wrong question.
	if _, err := s.SweepBestCheckpointed(ctx, actuary.Request{Question: actuary.QuestionRE}, nil, 1, nil); err == nil {
		t.Fatal("non-sweep-best request should be rejected")
	}
}

// TestCheckpointWireStrictness: corrupt or drifted checkpoint files
// must fail decode, not resume wrong.
func TestCheckpointWireStrictness(t *testing.T) {
	valid := `{"version":1,"fingerprint":"f","cursor":{"candidate":0,"stats":{"generated":0}},"summary":{"count":0,"min":0,"max":0,"sum":0}}`
	var cp actuary.SweepCheckpoint
	if err := json.Unmarshal([]byte(valid), &cp); err != nil {
		t.Fatalf("valid sweep checkpoint rejected: %v", err)
	}
	cases := []string{
		`{"version":2,"fingerprint":"f","cursor":{"candidate":0,"stats":{}},"summary":{"count":0,"min":0,"max":0,"sum":0}}`,           // future version
		`{"fingerprint":"f","cursor":{"candidate":0,"stats":{}},"summary":{"count":0,"min":0,"max":0,"sum":0}}`,                       // missing version
		`{"version":1,"fingerprint":"f","cursor":{"candidate":0,"stats":{}},"summary":{"count":0,"min":0,"max":0,"sum":0},"extra":1}`, // unknown field
		`{"version":1,"fingerprint":"f","cursor":{"candidate":0,"stats":{"bogus":1}},"summary":{"count":0,"min":0,"max":0,"sum":0}}`,  // unknown nested field
		`{"version":1`, // torn write
	}
	for _, c := range cases {
		var cp actuary.SweepCheckpoint
		if err := json.Unmarshal([]byte(c), &cp); err == nil {
			t.Errorf("sweep checkpoint %q decoded without error", c)
		}
	}

	var sc actuary.StreamCheckpoint
	if err := json.Unmarshal([]byte(`{"version":1,"fingerprint":"f","next":3}`), &sc); err != nil {
		t.Fatalf("valid stream checkpoint rejected: %v", err)
	}
	for _, c := range []string{
		`{"version":9,"fingerprint":"f","next":0}`,
		`{"version":1,"fingerprint":"f","next":-1}`,
		`{"version":1,"fingerprint":"f","next":0,"top_k":{"k":0,"seen":0}}`,
		`{"version":1,"fingerprint":"f","next":0,"stats":{"ok":1,"cost":{"count":1,"min":0,"max":0,"sum":0},"woo":2}}`,
	} {
		var sc actuary.StreamCheckpoint
		if err := json.Unmarshal([]byte(c), &sc); err == nil {
			t.Errorf("stream checkpoint %q decoded without error", c)
		}
	}

	var cc actuary.CoordinatorCheckpoint
	if err := json.Unmarshal([]byte(`{"version":1,"fingerprint":"f","shards":4}`), &cc); err != nil {
		t.Fatalf("valid coordinator checkpoint rejected: %v", err)
	}
	for _, c := range []string{
		`{"version":0,"fingerprint":"f","shards":4}`,
		`{"version":1,"fingerprint":"f","shards":0}`,
		`{"version":1,"fingerprint":"f","shards":2,"completed":[{"shard":5,"best":{"top":null,"pareto":null,"summary":{"count":0,"min":0,"max":0,"sum":0}}}]}`,
		`{"version":1,"fingerprint":"f","shards":2,"completed":[{"shard":1,"best":null}]}`,
	} {
		var cc actuary.CoordinatorCheckpoint
		if err := json.Unmarshal([]byte(c), &cc); err == nil {
			t.Errorf("coordinator checkpoint %q decoded without error", c)
		}
	}
}

// TestSweepFingerprint pins the identity semantics: requests that walk
// the same workload share a fingerprint, anything that changes the
// walk or the ranking changes it.
func TestSweepFingerprint(t *testing.T) {
	grid := testGrid([]float64{400}, []int{1, 2})
	base := actuary.Request{Question: actuary.QuestionSweepBest, Grid: &grid, TopK: 3}
	fp := func(r actuary.Request) string {
		t.Helper()
		s, err := actuary.SweepFingerprint(r)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	same := base
	same.ID = "relabelled" // IDs are bookkeeping, not workload
	if fp(base) != fp(same) {
		t.Error("relabelling a request changed its fingerprint")
	}
	zeroK := base
	zeroK.TopK = 0 // normalized to 1...
	oneK := base
	oneK.TopK = 1 // ...so 0 and 1 agree
	if fp(zeroK) != fp(oneK) {
		t.Error("TopK 0 and 1 should share a fingerprint")
	}
	for name, change := range map[string]func(*actuary.Request){
		"top-k":  func(r *actuary.Request) { r.TopK = 9 },
		"shard":  func(r *actuary.Request) { r.ShardIndex, r.ShardCount = 1, 2 },
		"policy": func(r *actuary.Request) { r.Policy = actuary.PerInstance },
		"grid": func(r *actuary.Request) {
			g := testGrid([]float64{401}, []int{1, 2})
			r.Grid = &g
		},
	} {
		changed := base
		change(&changed)
		if fp(base) == fp(changed) {
			t.Errorf("changing %s did not change the fingerprint", name)
		}
	}
	if _, err := actuary.SweepFingerprint(actuary.Request{Question: actuary.QuestionSweepBest}); err == nil {
		t.Error("fingerprinting without a grid should fail")
	}
}

// TestSaveLoadCheckpointFile covers the file round trip: atomic save,
// strict load, and the not-exist signal a fresh run keys on.
func TestSaveLoadCheckpointFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cp.json")
	if _, err := actuary.LoadSweepCheckpointFile(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file: %v, want os.ErrNotExist", err)
	}
	cp := &actuary.SweepCheckpoint{
		Fingerprint: "abc",
		Cursor:      actuary.SweepCursor{Candidate: 5, Stats: actuary.SweepStats{Generated: 3, Pruned: 2}},
		Summary:     actuary.SweepSummary{Count: 3, Min: 1, Max: 2, MinID: "a", MaxID: "b", Sum: 4.5},
	}
	if err := actuary.SaveCheckpointFile(path, cp); err != nil {
		t.Fatal(err)
	}
	back, err := actuary.LoadSweepCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if mustJSON(t, back) != mustJSON(t, cp) {
		t.Fatalf("file round trip diverged: %s != %s", mustJSON(t, back), mustJSON(t, cp))
	}
	// No temp droppings left beside the checkpoint.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("checkpoint dir holds %d entries, want just the checkpoint", len(entries))
	}
	// A corrupt file fails the load loudly.
	if err := os.WriteFile(path, []byte(`{"version":1`), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := actuary.LoadSweepCheckpointFile(path); err == nil || errors.Is(err, os.ErrNotExist) {
		t.Fatalf("corrupt file: %v, want a decode error", err)
	}
}

// TestOrderedResults checks the reordering contract: completion-order
// input, index-order output, pass-through below the start index, and
// an ascending flush after a gap.
func TestOrderedResults(t *testing.T) {
	in := make(chan actuary.Result, 8)
	for _, i := range []int{4, 2, 3, 5} {
		in <- actuary.Result{Index: i}
	}
	in <- actuary.Result{Index: -1} // transport error: passes straight through
	in <- actuary.Result{Index: 7}  // 6 never arrives: flushed after close
	close(in)
	var got []int
	for r := range actuary.OrderedResults(context.Background(), in, 2) {
		got = append(got, r.Index)
	}
	want := []int{2, 3, 4, 5, -1, 7}
	// Index 4 buffers until 2 and 3 arrive; -1 passes through on
	// arrival; 7 flushes at close despite the missing 6.
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("ordered indexes %v, want %v", got, want)
	}
}

// TestStreamCheckpointResume is the local-stream acceptance test:
// a scenario stream interrupted mid-flight and resumed from its last
// checkpoint ends with aggregates byte-identical to an uninterrupted
// run — across a session boundary, as a process restart would be.
func TestStreamCheckpointResume(t *testing.T) {
	cfg := actuary.ScenarioConfig{
		Name:      "resume-me",
		Questions: []string{"total-cost"},
		Sweeps: []actuary.SweepConfig{{
			Name: "sw", Nodes: []string{"5nm", "7nm"}, Scheme: "MCM", D2DFraction: 0.10,
			Quantity: 1_000_000, AreasMM2: []float64{200, 400, 600, 800}, Counts: []int{1, 2, 3, 4},
		}},
	}
	fingerprint, err := cfg.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}

	// Uninterrupted reference, reduced through the same aggregators.
	run := func(s *actuary.Session, cp *actuary.StreamCheckpoint, ctx context.Context,
		save func(*actuary.StreamCheckpoint) error) error {
		src, err := cfg.Source()
		if err != nil {
			return err
		}
		ch, err := s.Stream(ctx, src, actuary.StreamResumeAt(cp.Next), actuary.StreamOrdered())
		if err != nil {
			return err
		}
		_, err = actuary.ReduceCheckpointed(ch, cp, 3, save)
		return err
	}
	sref, err := actuary.NewSession(actuary.WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	want := actuary.NewStreamCheckpoint(fingerprint, 3)
	if err := run(sref, want, context.Background(), nil); err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cancel after the second save, then resume from
	// the last snapshot on a fresh session.
	s1, err := actuary.NewSession(actuary.WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var last *actuary.StreamCheckpoint
	saves := 0
	err = run(s1, actuary.NewStreamCheckpoint(fingerprint, 3), ctx,
		func(cp *actuary.StreamCheckpoint) error {
			data, err := json.Marshal(cp)
			if err != nil {
				return err
			}
			back := new(actuary.StreamCheckpoint)
			if err := json.Unmarshal(data, back); err != nil {
				return err
			}
			last = back
			if saves++; saves == 2 {
				cancel() // the "kill": nothing after this save may count
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if last == nil {
		t.Fatal("no checkpoint saved before the interruption")
	}
	if last.Next >= want.Next {
		t.Fatalf("interrupted run accounted %d results, reference only %d — cancel came too late to test anything",
			last.Next, want.Next)
	}
	if last.Fingerprint != fingerprint {
		t.Fatalf("checkpoint fingerprint %q != scenario fingerprint %q", last.Fingerprint, fingerprint)
	}

	s2, err := actuary.NewSession(actuary.WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := run(s2, last, context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	if mustJSON(t, last) != mustJSON(t, want) {
		t.Fatalf("resumed aggregates diverged:\n got %s\nwant %s", mustJSON(t, last), mustJSON(t, want))
	}
	if last.TopK.Seen() == 0 || len(last.TopK.Results()) == 0 {
		t.Fatal("resumed checkpoint is empty — the test proved nothing")
	}
}

// TestScenarioResumeLocalBackend checks client.Local's resume parity
// through the scenario Resume field: ordered delivery, index offset,
// and no re-evaluation of the skipped prefix.
func TestScenarioResumeLocalBackend(t *testing.T) {
	// Exercised in client/server tests too; here we pin the
	// ScenarioConfig-level semantics.
	cfg := actuary.ScenarioConfig{
		Name:      "ordered",
		Questions: []string{"total-cost"},
		Sweeps: []actuary.SweepConfig{{
			Name: "sw", Node: "5nm", Scheme: "MCM", D2DFraction: 0.10,
			Quantity: 1_000_000, AreasMM2: []float64{200, 400, 600}, Counts: []int{1, 2, 3},
		}},
	}
	if _, _, err := (actuary.ScenarioConfig{Resume: &actuary.StreamResume{NextIndex: -2}}).ResumeIndex(); err == nil {
		t.Fatal("negative resume index should be rejected")
	}
	next, ordered, err := cfg.ResumeIndex()
	if err != nil || next != 0 || ordered {
		t.Fatalf("no-resume scenario: next=%d ordered=%v err=%v", next, ordered, err)
	}
	// Fingerprint ignores delivery configuration.
	fpPlain, err := cfg.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	resumed := cfg
	resumed.Resume = &actuary.StreamResume{NextIndex: 4}
	fpResumed, err := resumed.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fpPlain != fpResumed {
		t.Error("the resume field must not change the scenario fingerprint")
	}
	// Version 0 (unset) and 2 declare the same schema, so they must
	// fingerprint identically — resuming a run after stamping the file
	// with an explicit version is not a new workload.
	stamped := cfg
	stamped.Version = 2
	if fpStamped, _ := stamped.Fingerprint(); fpStamped != fpPlain {
		t.Error("version 0 and version 2 encodings of one scenario fingerprint differently")
	}
	if fpOther, _ := (actuary.ScenarioConfig{Name: "other"}).Fingerprint(); fpOther == fpPlain {
		t.Error("different scenarios share a fingerprint")
	}
}

// TestReduceCheckpointedStopsAtInterruption pins the contract that a
// checkpoint never accounts interruption artifacts: gaps and canceled
// results end accounting, and the checkpoint stays resumable.
func TestReduceCheckpointedStopsAtInterruption(t *testing.T) {
	tc := actuary.TotalCost{}
	mk := func(i int) actuary.Result {
		return actuary.Result{Index: i, ID: fmt.Sprintf("r%d", i), Question: actuary.QuestionTotalCost, TotalCost: &tc}
	}
	// A gap: 0, 1, 3 — accounting must stop at 2.
	in := make(chan actuary.Result, 4)
	in <- mk(0)
	in <- mk(1)
	in <- mk(3)
	close(in)
	cp := actuary.NewStreamCheckpoint("f", 2)
	n, err := actuary.ReduceCheckpointed(in, cp, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || cp.Next != 2 || cp.Stats.OK != 2 {
		t.Fatalf("gap handling: n=%d next=%d ok=%d, want 2/2/2", n, cp.Next, cp.Stats.OK)
	}
	// An ErrCanceled result is an interruption artifact, not a failure.
	in2 := make(chan actuary.Result, 2)
	in2 <- mk(0)
	in2 <- actuary.Result{Index: 1, Err: &actuary.Error{Code: actuary.ErrCanceled, Index: 1,
		Question: actuary.QuestionTotalCost, Err: context.Canceled}}
	close(in2)
	cp2 := actuary.NewStreamCheckpoint("f", 2)
	if _, err := actuary.ReduceCheckpointed(in2, cp2, 1, nil); err != nil {
		t.Fatal(err)
	}
	if cp2.Next != 1 || cp2.Stats.Failed != 0 {
		t.Fatalf("canceled result accounted: next=%d failed=%d, want 1/0", cp2.Next, cp2.Stats.Failed)
	}
	// A save error surfaces and stops the reduce.
	in3 := make(chan actuary.Result, 2)
	in3 <- mk(0)
	in3 <- mk(1)
	close(in3)
	boom := errors.New("out of inodes")
	if _, err := actuary.ReduceCheckpointed(in3, actuary.NewStreamCheckpoint("f", 1), 1,
		func(*actuary.StreamCheckpoint) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("save error: %v, want %v", err, boom)
	}
}

// TestCheckpointVersionMessage pins the shape of the version error so
// operators can tell a stale binary from a corrupt file.
func TestCheckpointVersionMessage(t *testing.T) {
	var cp actuary.SweepCheckpoint
	err := json.Unmarshal([]byte(`{"version":99,"fingerprint":"f","cursor":{"candidate":0,"stats":{}},"summary":{"count":0,"min":0,"max":0,"sum":0}}`), &cp)
	if err == nil || !strings.Contains(err.Error(), "version 99") || !strings.Contains(err.Error(), "version 1") {
		t.Fatalf("version error %v should name both versions", err)
	}
}

// TestOrderedResultsCancellation pins the abandonment contract: a
// consumer that cancels the context and walks away without draining
// must release the reordering goroutine, exactly as it may with the
// raw stream channel.
func TestOrderedResultsCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan actuary.Result, 2)
	out := actuary.OrderedResults(ctx, in, 0)
	in <- actuary.Result{Index: 1} // held as pending: index 0 is missing
	in <- actuary.Result{Index: 2}
	cancel()
	close(in)
	_ = out // abandoned: no reader, ever
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("reordering goroutine still alive %d > %d — leaked after cancel+abandon",
				runtime.NumGoroutine(), before)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStreamOrderedBoundedUnderSkew pins the credit-window bound: a
// stream whose head request is far slower than the rest must not pull
// the whole source ahead while the head computes — dispatch stalls at
// the window, so reorder memory stays O(in-flight), not O(stream).
func TestStreamOrderedBoundedUnderSkew(t *testing.T) {
	s, err := actuary.NewSession(actuary.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	// Request 0 is a multi-hundred-point sweep-best; hundreds of
	// microsecond-cheap requests follow. The source counts how far
	// generation ran ahead.
	var areas []float64
	for a := 100.0; a <= 800; a += 10 {
		areas = append(areas, a)
	}
	grid := testGrid(areas, []int{1, 2, 3, 4, 5, 6, 7, 8})
	slow := actuary.Request{ID: "slow", Question: actuary.QuestionSweepBest, Grid: &grid, TopK: 1}
	sys := actuary.Monolithic("cheap", "5nm", 400, 1e6)
	const total = 300
	i := 0
	src := &countingSource{inner: sourceFuncT(func() (actuary.Request, bool) {
		if i >= total {
			return actuary.Request{}, false
		}
		i++
		if i == 1 {
			return slow, true
		}
		return actuary.Request{ID: fmt.Sprintf("cheap-%d", i), Question: actuary.QuestionRE, System: sys}, true
	})}
	ctx := context.Background()
	const inFlight = 4
	ch, err := s.Stream(ctx, src, actuary.StreamOrdered(), actuary.StreamInFlight(inFlight))
	if err != nil {
		t.Fatal(err)
	}
	// By the time the test reads result n, the pump may have pulled at
	// most n+1 (emitted and read) + the credit window (dispatched,
	// unemitted) + the ordered channel's own buffer and one in-flight
	// send (emitted, unread — their credits are back with the pump).
	// Anything beyond that means dispatch is not credit-limited.
	window := (inFlight + 2 /* workers */) + inFlight + 1
	n := 0
	for r := range ch {
		if r.Err != nil {
			t.Fatalf("result %q failed: %v", r.ID, r.Err)
		}
		if r.Index != n {
			t.Fatalf("emission %d carries index %d — ordered stream out of order", n, r.Index)
		}
		if ahead := src.pulled() - (n + 1); ahead > window+1 {
			t.Fatalf("generation ran %d ahead of emission %d; credit window is %d", ahead, n, window)
		}
		n++
	}
	if n != total {
		t.Fatalf("stream delivered %d of %d results", n, total)
	}
}

// sourceFuncT adapts a closure to a RequestSource for tests.
type sourceFuncT func() (actuary.Request, bool)

func (f sourceFuncT) Next() (actuary.Request, bool) { return f() }

// TestSweepCheckpointRejectsNegativeCounters: impossible counters in
// an otherwise well-formed checkpoint must fail resume, as the
// checkpoint contract promises.
func TestSweepCheckpointRejectsNegativeCounters(t *testing.T) {
	s, err := actuary.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	grid := testGrid([]float64{400, 800}, []int{1, 2, 4})
	req := actuary.Request{Question: actuary.QuestionSweepBest, Grid: &grid, TopK: 2}
	fp, err := actuary.SweepFingerprint(req)
	if err != nil {
		t.Fatal(err)
	}
	for name, cp := range map[string]*actuary.SweepCheckpoint{
		"negative infeasible": {Fingerprint: fp, Infeasible: -5},
		"negative candidate":  {Fingerprint: fp, FirstFailureCandidate: -1},
		"negative summary":    {Fingerprint: fp, Summary: actuary.SweepSummary{Count: -2}},
	} {
		if _, err := s.SweepBestCheckpointed(ctx, req, cp, 1, nil); !errors.Is(err, actuary.ErrCheckpointMismatch) {
			t.Errorf("%s: %v, want ErrCheckpointMismatch", name, err)
		}
	}
}

// fleetStreamTestCheckpoint builds a structurally valid mid-run
// fleet stream checkpoint: three delivered results split 2/1 across
// two shard cursors.
func fleetStreamTestCheckpoint() *actuary.FleetStreamCheckpoint {
	merged := actuary.NewStreamCheckpoint("scenario-fp", 3)
	merged.Next = 3
	merged.Stats.OK = 2
	merged.Stats.Failed = 1
	return &actuary.FleetStreamCheckpoint{
		Merged: merged,
		Shards: 2,
		Cursors: []actuary.StreamCheckpoint{
			{Fingerprint: "shard-0-fp", Next: 2},
			{Fingerprint: "shard-1-fp", Next: 1},
		},
	}
}

func TestFleetStreamCheckpointWireRoundTrip(t *testing.T) {
	cp := fleetStreamTestCheckpoint()
	data := mustJSON(t, cp)
	var back actuary.FleetStreamCheckpoint
	if err := json.Unmarshal([]byte(data), &back); err != nil {
		t.Fatal(err)
	}
	if again := mustJSON(t, &back); again != data {
		t.Fatalf("round trip drifted:\n%s\n%s", data, again)
	}
	if back.Merged.Next != 3 || back.Shards != 2 || len(back.Cursors) != 2 {
		t.Fatalf("round trip lost structure: %+v", back)
	}
	if back.Cursors[0].Fingerprint != "shard-0-fp" || back.Cursors[1].Next != 1 {
		t.Fatalf("round trip lost cursors: %+v", back.Cursors)
	}
}

func TestFleetStreamCheckpointWireRejects(t *testing.T) {
	good := mustJSON(t, fleetStreamTestCheckpoint())
	cases := map[string]string{
		"unknown version": strings.Replace(good, `"version":1`, `"version":99`, 1),
		"unknown field":   strings.Replace(good, `"shards":2`, `"shards":2,"bogus":true`, 1),
		"cursor sum mismatch": strings.Replace(good,
			`"next":1`, `"next":5`, 1),
		"missing merged": `{"version":1,"merged":null,"shards":1,"cursors":[{"fingerprint":"x","next":0}]}`,
	}
	for name, data := range cases {
		if data == good {
			t.Fatalf("%s: replacement did not apply", name)
		}
		var cp actuary.FleetStreamCheckpoint
		if err := json.Unmarshal([]byte(data), &cp); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	if !strings.Contains(cases["unknown version"], `"version":99`) {
		t.Fatal("version replacement missed the outer envelope")
	}
	var cp actuary.FleetStreamCheckpoint
	err := json.Unmarshal([]byte(cases["unknown version"]), &cp)
	if err == nil || !strings.Contains(err.Error(), "fleet stream checkpoint version 99") {
		t.Fatalf("version error reads %v", err)
	}
}

func TestFleetStreamCheckpointValidate(t *testing.T) {
	if err := fleetStreamTestCheckpoint().Validate(); err != nil {
		t.Fatalf("valid checkpoint rejected: %v", err)
	}
	break_ := func(f func(*actuary.FleetStreamCheckpoint)) *actuary.FleetStreamCheckpoint {
		cp := fleetStreamTestCheckpoint()
		f(cp)
		return cp
	}
	bad := map[string]*actuary.FleetStreamCheckpoint{
		"nil merged":      break_(func(c *actuary.FleetStreamCheckpoint) { c.Merged = nil }),
		"zero shards":     break_(func(c *actuary.FleetStreamCheckpoint) { c.Shards = 0; c.Cursors = nil }),
		"cursor count":    break_(func(c *actuary.FleetStreamCheckpoint) { c.Cursors = c.Cursors[:1] }),
		"negative cursor": break_(func(c *actuary.FleetStreamCheckpoint) { c.Cursors[0].Next = -1 }),
		"negative merged": break_(func(c *actuary.FleetStreamCheckpoint) { c.Merged.Next = -1 }),
		"sum mismatch":    break_(func(c *actuary.FleetStreamCheckpoint) { c.Cursors[1].Next = 4 }),
	}
	for name, cp := range bad {
		if err := cp.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLoadFleetStreamCheckpointFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fleet.json")
	cp := fleetStreamTestCheckpoint()
	if err := actuary.SaveCheckpointFile(path, cp); err != nil {
		t.Fatal(err)
	}
	back, err := actuary.LoadFleetStreamCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if mustJSON(t, back) != mustJSON(t, cp) {
		t.Fatal("file round trip drifted")
	}
	if _, err := actuary.LoadFleetStreamCheckpointFile(filepath.Join(dir, "absent.json")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file: %v", err)
	}
}
