#!/usr/bin/env bash
# stream-smoke.sh — prove the fleet-striped scenario stream over real
# HTTP: merged NDJSON byte-identical to a single-backend run, through
# a daemon dying mid-stream and through the coordinator itself being
# SIGKILLed and resumed from its checkpoint.
#
# Two passes, each checked byte-for-byte against a single-process
# reference stream of the same scenario:
#
#   1. daemon kill: three daemons serve a striped -mode stream run;
#      once results are flowing, one daemon is SIGKILLed. Its shards
#      fail on transport, reassign to the survivors, and resume from
#      their per-shard watermarks — the merged output must not repeat,
#      drop or reorder a single line.
#
#   2. coordinator kill and resume: a checkpointed striped stream is
#      SIGKILLed mid-run, then rerun with the same flags. The rerun
#      must announce the resume, deliver only the undelivered tail,
#      and the checkpoint-claimed prefix of the first run plus that
#      tail must reassemble the reference exactly. (Stdout is flushed
#      before every checkpoint save, so the claimed prefix is always
#      durably on disk; lines flushed after the last save may appear
#      in both runs, which is why the cut is computed from the tail.)
#
# Usage: [EXPLORE=path] [ACTUARYD=path] scripts/stream-smoke.sh [WORKDIR]
set -euo pipefail

explore=${EXPLORE:-./explore}
actuaryd=${ACTUARYD:-./actuaryd}
keep_dir=no
if [ -n "${1:-}" ]; then
  dir=$1
  keep_dir=yes
  mkdir -p "$dir"
else
  dir=$(mktemp -d)
fi

pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  if [ "$keep_dir" = no ]; then rm -rf "$dir"; fi
}
trap cleanup EXIT

# A grid big enough that the striped stream is still mid-flight when
# the harness pulls its triggers (tens of seconds of evaluation), and
# a short probe cadence so the dead daemon is parked quickly instead
# of eating speculative retries for the full default second.
flags=(-mode stream -questions total-cost,optimal-chiplet-count
       -nodes 5nm,7nm -schemes MCM,2.5D
       -area-range 100:940:1 -count-range 1:6)
fleetflags=(-fleet-probe-every 100ms -fleet-probe-timeout 250ms)

start_daemon() { # start_daemon NAME -> sets url_NAME, pid_NAME
  local name=$1
  "$actuaryd" -addr 127.0.0.1:0 > "$dir/$name.log" 2>&1 &
  printf -v "pid_$name" '%s' "$!"
  pids+=("$!")
  local url
  url=$(scripts/wait-daemon.sh "$dir/$name.log")
  printf -v "url_$name" '%s' "$url"
}

wait_for_lines() { # wait_for_lines FILE N WHAT — until FILE holds >= N lines
  local deadline=$(( $(date +%s) + 60 ))
  while [ "$(wc -l < "$2" 2>/dev/null || echo 0)" -lt "$1" ]; do
    if [ "$(date +%s)" -ge "$deadline" ]; then
      echo "stream-smoke: timed out waiting for $3" >&2
      exit 1
    fi
    sleep 0.1
  done
}

echo "stream-smoke: single-backend reference stream"
"$explore" "${flags[@]}" > "$dir/reference.ndjson"
total=$(wc -l < "$dir/reference.ndjson")
echo "stream-smoke: reference holds $total results"

echo "stream-smoke: pass 1 — SIGKILL a daemon mid-stream"
start_daemon a1; start_daemon b1; start_daemon c1
"$explore" "${flags[@]}" "${fleetflags[@]}" -fleet "$url_a1,$url_b1,$url_c1" -shards 9 \
  > "$dir/striped.ndjson" 2> "$dir/striped.err" &
stream=$!
wait_for_lines 25 "$dir/striped.ndjson" "the striped stream to start delivering"
kill -KILL "$pid_c1"
at_kill=$(wc -l < "$dir/striped.ndjson")
if [ "$at_kill" -ge "$total" ]; then
  echo "stream-smoke: stream already drained ($at_kill lines) before the kill — grow the grid" >&2
  exit 1
fi
echo "stream-smoke: killed daemon $url_c1 with $at_kill of $total results delivered"
if ! wait "$stream"; then
  echo "stream-smoke: striped stream failed after losing a daemon:" >&2
  cat "$dir/striped.err" >&2
  exit 1
fi
if ! grep -q 'marked down' "$dir/striped.err"; then
  echo "stream-smoke: monitor never marked the dead daemon down:" >&2
  cat "$dir/striped.err" >&2
  exit 1
fi
diff "$dir/reference.ndjson" "$dir/striped.ndjson"
echo "stream-smoke: striped output is byte-identical to the single-backend stream"
kill "$pid_a1" "$pid_b1" 2>/dev/null || true

echo "stream-smoke: pass 2 — SIGKILL the coordinator, resume from its checkpoint"
start_daemon a2; start_daemon b2; start_daemon c2
ckpt="$dir/stream.ckpt"
"$explore" "${flags[@]}" "${fleetflags[@]}" -fleet "$url_a2,$url_b2,$url_c2" -shards 9 \
  -checkpoint "$ckpt" -checkpoint-every 25 \
  > "$dir/first.ndjson" 2> "$dir/first.err" &
stream=$!
wait_for_lines 100 "$dir/first.ndjson" "the checkpointed stream to make progress"
deadline=$(( $(date +%s) + 60 ))
until [ -s "$ckpt" ]; do
  if [ "$(date +%s)" -ge "$deadline" ]; then
    echo "stream-smoke: checkpointed stream never wrote its checkpoint" >&2
    exit 1
  fi
  sleep 0.1
done
kill -KILL "$stream"
wait "$stream" 2>/dev/null || true
if [ ! -s "$ckpt" ]; then
  echo "stream-smoke: no checkpoint on disk after the kill" >&2
  exit 1
fi
echo "stream-smoke: coordinator killed with $(wc -l < "$dir/first.ndjson") lines flushed"

"$explore" "${flags[@]}" "${fleetflags[@]}" -fleet "$url_a2,$url_b2,$url_c2" -shards 9 \
  -checkpoint "$ckpt" -checkpoint-every 25 \
  > "$dir/second.ndjson" 2> "$dir/second.err"
if ! grep -q 'resuming from checkpoint' "$dir/second.err"; then
  echo "stream-smoke: rerun did not resume from the checkpoint:" >&2
  cat "$dir/second.err" >&2
  exit 1
fi
if [ -e "$ckpt" ]; then
  echo "stream-smoke: completed run left its checkpoint behind" >&2
  exit 1
fi
# The rerun delivered the tail from the last checkpoint cursor; the
# first run's durable prefix is everything before that cursor. The
# two must reassemble the reference without a seam.
tail_lines=$(wc -l < "$dir/second.ndjson")
cut=$(( total - tail_lines ))
if [ "$cut" -le 0 ] || [ "$tail_lines" -ge "$total" ]; then
  echo "stream-smoke: rerun redelivered the whole stream ($tail_lines of $total lines) — resume did nothing" >&2
  exit 1
fi
if [ "$(wc -l < "$dir/first.ndjson")" -lt "$cut" ]; then
  echo "stream-smoke: checkpoint claims $cut delivered lines but only $(wc -l < "$dir/first.ndjson") were flushed" >&2
  exit 1
fi
head -n "$cut" "$dir/first.ndjson" > "$dir/combined.ndjson"
cat "$dir/second.ndjson" >> "$dir/combined.ndjson"
diff "$dir/reference.ndjson" "$dir/combined.ndjson"
echo "stream-smoke: resumed stream reassembles the reference exactly ($cut + $tail_lines lines)"
