#!/usr/bin/env bash
# bench-baseline.sh — record the hot-path benchmark baseline as JSON.
#
# Runs the two benchmarks the fleet work must not regress —
# BenchmarkSessionStreamSweep (the single-process streaming pipeline)
# and BenchmarkDistributedSweep (the sharded fan-out, now the fleet
# scheduler under the distribute shim) — and distills ns/op, B/op,
# allocs/op and derived points/sec into one JSON document. Points/sec
# comes from the known grid size of each sub-benchmark: the stream
# sweep runs 568- and 4488-point grids, the distributed sweep a
# 50736-point grid (151 areas × 3 nodes × 2 schemes × 8 counts × 7
# quantities).
#
# The checked-in snapshot (BENCH_PR6.json) is a reviewed baseline, not
# a CI gate: absolute numbers move with hardware, so regressions are
# judged by re-running this script on the same machine and comparing.
#
# Usage: scripts/bench-baseline.sh [OUTPUT.json]
set -euo pipefail

out=${1:-BENCH_PR6.json}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "bench-baseline: running BenchmarkSessionStreamSweep" >&2
go test -run '^$' -bench '^BenchmarkSessionStreamSweep$' -benchmem -benchtime 2x . \
  > "$tmp/stream.txt"
echo "bench-baseline: running BenchmarkDistributedSweep" >&2
go test -run '^$' -bench '^BenchmarkDistributedSweep$' -benchmem -benchtime 2x ./distribute \
  > "$tmp/distribute.txt"

# Benchmark output lines look like
#   BenchmarkName/sub-8   	       2	 123456789 ns/op	 456 B/op	 7 allocs/op
# awk turns each into a JSON entry, attaching points-per-op from the
# sub-benchmark name (568pt/4488pt) or the per-file default (the
# stream benchmark's sweep-best-question arm runs the 568-point grid;
# the distributed benchmark always runs the fixed 50736-point grid).
parse() {
  awk -v points_default="$2" '
    /ns\/op/ {
      name = $1
      sub(/-[0-9]+$/, "", name)                 # strip GOMAXPROCS suffix
      ns = ""; bytes = ""; allocs = ""
      for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i - 1)
        if ($i == "B/op")      bytes = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
      }
      points = points_default
      if (match(name, /[0-9]+pt/)) points = substr(name, RSTART, RLENGTH - 2)
      pps = (ns > 0) ? points * 1e9 / ns : 0
      printf "    {\"name\": \"%s\", \"ns_per_op\": %.0f, \"bytes_per_op\": %s, \"allocs_per_op\": %s, \"points_per_op\": %s, \"points_per_sec\": %.0f},\n", \
        name, ns, bytes, allocs, points, pps
    }
  ' "$1"
}

{
  echo '{'
  echo '  "benchmarks": ['
  { parse "$tmp/stream.txt" 568; parse "$tmp/distribute.txt" 50736; } | sed '$ s/,$//'
  echo '  ],'
  echo "  \"go\": \"$(go env GOVERSION)\","
  echo "  \"goos\": \"$(go env GOOS)\","
  echo "  \"goarch\": \"$(go env GOARCH)\","
  echo "  \"note\": \"baseline for PR 6 (fleet scheduler); regenerate with scripts/bench-baseline.sh and compare on the same machine\""
  echo '}'
} > "$out"

echo "bench-baseline: wrote $out" >&2
