#!/usr/bin/env bash
# bench-baseline.sh — record the hot-path benchmark baseline as JSON.
#
# Runs the three benchmarks the perf work must not regress —
# BenchmarkSessionStreamSweep (the single-process streaming pipeline),
# BenchmarkDistributedSweep (the sharded fan-out on the fleet
# scheduler) and BenchmarkSearchBest (the adaptive search on the
# 112008-candidate grid) — and distills ns/op, B/op, allocs/op,
# points/sec, the partials-cache hit rate and the adaptive search's
# evaluated-ratio into one JSON document. Points/sec is taken from the
# benchmark's own b.ReportMetric wall-clock figure when the line
# carries one, and derived from ns/op and the known grid size
# (568/4488-point stream grids, 50736-point distributed grid)
# otherwise.
#
# When an earlier BENCH_*.json is checked in, the document also embeds
# a "delta_vs" block: per-benchmark new/old ratios of points_per_sec,
# allocs_per_op and allocs_per_point against the most recent previous
# baseline, so the trajectory is readable straight from the file
# (allocs_per_point is derived for older baselines that predate the
# field).
#
# The checked-in snapshot is a reviewed baseline, not a CI gate:
# absolute numbers move with hardware, so regressions are judged by
# re-running this script on the same machine and comparing (CI runs a
# coarse 25% gate against a cache-kept baseline; see bench-smoke).
#
# Usage: scripts/bench-baseline.sh [OUTPUT.json]
set -euo pipefail

out=${1:-BENCH_PR9.json}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "bench-baseline: running BenchmarkSessionStreamSweep" >&2
# 20 iterations, not 2: the partials cache warms over the first few
# iterations (hit rate 0.85 cold vs 0.96 warm), and a 2x run reports
# the warm-up transient as steady-state throughput — that is what made
# BENCH_PR8 read ~10% below BENCH_PR7 on identical code.
go test -run '^$' -bench '^BenchmarkSessionStreamSweep$' -benchmem -benchtime 20x . \
  > "$tmp/stream.txt"
echo "bench-baseline: running BenchmarkDistributedSweep" >&2
go test -run '^$' -bench '^BenchmarkDistributedSweep$' -benchmem -benchtime 2x ./distribute \
  > "$tmp/distribute.txt"
echo "bench-baseline: running BenchmarkSearchBest" >&2
go test -run '^$' -bench '^BenchmarkSearchBest$' -benchmem -benchtime 2x . \
  > "$tmp/search.txt"

# Benchmark output lines look like
#   BenchmarkName/sub-8  2  123456 ns/op  0.75 partials-hit-rate  29347 points/sec  456 B/op  7 allocs/op
# awk turns each into a JSON entry. Reported points/sec (wall clock)
# wins over the ns/op derivation; the points-per-op count comes from
# the sub-benchmark name (568pt/4488pt) or the per-file default (the
# stream benchmark's sweep-best-question arm runs the 568-point grid;
# the distributed benchmark always runs the fixed 50736-point grid).
parse() {
  awk -v points_default="$2" '
    /ns\/op/ {
      name = $1
      sub(/-[0-9]+$/, "", name)                 # strip GOMAXPROCS suffix
      ns = ""; bytes = ""; allocs = ""; rpps = ""; hit = ""; ratio = ""
      for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")             ns = $(i - 1)
        if ($i == "B/op")              bytes = $(i - 1)
        if ($i == "allocs/op")         allocs = $(i - 1)
        if ($i == "points/sec")        rpps = $(i - 1)
        if ($i == "partials-hit-rate") hit = $(i - 1)
        if ($i == "evaluated-ratio")   ratio = $(i - 1)
      }
      points = points_default
      if (match(name, /[0-9]+pt/)) points = substr(name, RSTART, RLENGTH - 2)
      pps = (rpps != "") ? rpps : ((ns > 0) ? points * 1e9 / ns : 0)
      extra = (hit != "") ? sprintf(", \"partials_hit_rate\": %s", hit) : ""
      if (ratio != "") extra = extra sprintf(", \"evaluated_ratio\": %s", ratio)
      app = (points > 0 && allocs != "") ? allocs / points : 0
      printf "    {\"name\": \"%s\", \"ns_per_op\": %.0f, \"bytes_per_op\": %s, \"allocs_per_op\": %s, \"allocs_per_point\": %.3f, \"points_per_op\": %s, \"points_per_sec\": %.0f%s},\n", \
        name, ns, bytes, allocs, app, points, pps, extra
    }
  ' "$1"
}

{ parse "$tmp/stream.txt" 568; parse "$tmp/distribute.txt" 50736; parse "$tmp/search.txt" 112008; } | sed '$ s/,$//' > "$tmp/bench.jsonl"

# delta_vs: ratios against the newest previous checked-in baseline
# (any BENCH_*.json other than the file being written).
prev=$(ls BENCH_*.json 2>/dev/null | grep -vx "$out" | sort -V | tail -1 || true)
lookup() { # lookup FILE NAME FIELD -> value or empty
  # "|| true" keeps an absent entry or field (older baselines lack
  # allocs_per_point) from tripping set -e/pipefail mid-document.
  grep -o "{\"name\": \"$2\"[^}]*}" "$1" 2>/dev/null \
    | grep -o "\"$3\": [0-9.]*" | head -1 | awk '{print $2}' || true
}

{
  echo '{'
  echo '  "benchmarks": ['
  cat "$tmp/bench.jsonl"
  echo '  ],'
  if [[ -n "$prev" ]]; then
    echo '  "delta_vs": {'
    echo "    \"baseline\": \"$prev\","
    echo '    "ratios": ['
    while IFS= read -r line; do
      name=$(printf '%s' "$line" | grep -o '"name": "[^"]*"' | sed 's/"name": "//;s/"$//')
      new_pps=$(printf '%s' "$line" | grep -o '"points_per_sec": [0-9.]*' | awk '{print $2}')
      new_allocs=$(printf '%s' "$line" | grep -o '"allocs_per_op": [0-9.]*' | awk '{print $2}')
      new_app=$(printf '%s' "$line" | grep -o '"allocs_per_point": [0-9.]*' | awk '{print $2}')
      old_pps=$(lookup "$prev" "$name" points_per_sec)
      old_allocs=$(lookup "$prev" "$name" allocs_per_op)
      # Older baselines predate allocs_per_point; derive it from the
      # fields they do carry so the ratio is still comparable.
      old_app=$(lookup "$prev" "$name" allocs_per_point)
      if [[ -z "$old_app" && -n "$old_allocs" ]]; then
        old_points=$(lookup "$prev" "$name" points_per_op)
        if [[ -n "$old_points" ]]; then
          old_app=$(awk -v a="$old_allocs" -v p="$old_points" 'BEGIN { if (p > 0) printf "%.3f", a / p }')
        fi
      fi
      if [[ -n "$old_pps" && -n "$old_allocs" ]]; then
        awk -v n="$name" -v np="$new_pps" -v op="$old_pps" -v na="$new_allocs" -v oa="$old_allocs" \
            -v npp="${new_app:-0}" -v opp="${old_app:-0}" \
          'BEGIN { printf "      {\"name\": \"%s\", \"points_per_sec\": %.2f, \"allocs_per_op\": %.2f, \"allocs_per_point\": %.2f},\n", \
                   n, (op > 0) ? np / op : 0, (oa > 0) ? na / oa : 0, (opp > 0) ? npp / opp : 0 }'
      fi
    done < "$tmp/bench.jsonl" | sed '$ s/,$//'
    echo '    ]'
    echo '  },'
  fi
  echo "  \"go\": \"$(go env GOVERSION)\","
  echo "  \"goos\": \"$(go env GOOS)\","
  echo "  \"goarch\": \"$(go env GOARCH)\","
  echo "  \"note\": \"regenerate with scripts/bench-baseline.sh $out and compare on the same machine; delta_vs ratios are new/old\""
  echo '}'
} > "$out"

echo "bench-baseline: wrote $out" >&2
