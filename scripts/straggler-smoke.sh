#!/usr/bin/env bash
# straggler-smoke.sh — prove the fleet scheduler rescues a wedged
# daemon and re-admits a recovered one, end to end over real HTTP.
#
# Two passes over the same grid, each checked byte-for-byte against a
# single-process reference run:
#
#   1. straggler: three daemons serve a -fleet sweep; once one of them
#      holds a shard in flight it is SIGSTOPped — still listening,
#      never answering, the worst kind of failure. The sweep must
#      finish anyway (the lost shard is speculatively re-executed on a
#      live daemon), the output must match the reference exactly, and
#      the health monitor must have marked the straggler down.
#
#   2. recovery: one daemon is SIGSTOPped before the sweep starts, so
#      the first probe marks it down. Mid-sweep it gets SIGCONT; the
#      monitor's mark-up hysteresis must re-admit it ("marked up" on
#      stderr) and the output must again match the reference.
#
# Usage: [EXPLORE=path] [ACTUARYD=path] scripts/straggler-smoke.sh [WORKDIR]
set -euo pipefail

explore=${EXPLORE:-./explore}
actuaryd=${ACTUARYD:-./actuaryd}
keep_dir=no
if [ -n "${1:-}" ]; then
  dir=$1
  keep_dir=yes
  mkdir -p "$dir"
else
  dir=$(mktemp -d)
fi

pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do
    kill -CONT "$pid" 2>/dev/null || true
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  if [ "$keep_dir" = no ]; then rm -rf "$dir"; fi
}
trap cleanup EXIT

# ~130k grid points: a few seconds of wall clock across two live
# daemons, so the probe loop (100ms cadence, 250ms per-probe timeout,
# three strikes to mark down) has an order of magnitude of headroom to
# catch the straggler before the sweep drains.
flags=(-mode sweep -nodes 5nm,7nm,12nm -schemes MCM,2.5D,InFO
       -area-range 100:1000:1 -count-range 1:16 -top 8)
fleetflags=(-fleet-probe-every 100ms -fleet-probe-timeout 250ms)

start_daemon() { # start_daemon NAME -> sets url_NAME, pid_NAME
  local name=$1
  "$actuaryd" -addr 127.0.0.1:0 > "$dir/$name.log" 2>&1 &
  printf -v "pid_$name" '%s' "$!"
  pids+=("$!")
  local url
  url=$(scripts/wait-daemon.sh "$dir/$name.log")
  printf -v "url_$name" '%s' "$url"
}

wait_for_line() { # wait_for_line FILE PATTERN WHAT [TIMEOUT_SECONDS]
  local deadline=$(( $(date +%s) + ${4:-30} ))
  until grep -q "$2" "$1" 2>/dev/null; do
    if [ "$(date +%s)" -ge "$deadline" ]; then
      echo "straggler-smoke: timed out waiting for $3" >&2
      sed "s/^/straggler-smoke: $1: /" "$1" >&2 || true
      exit 1
    fi
    sleep 0.1
  done
}

wait_in_flight() { # wait_in_flight URL — until the daemon is evaluating
  local deadline=$(( $(date +%s) + 30 ))
  until curl -sf "$1/v1/metricz" 2>/dev/null | grep -qE '"in_flight":[1-9]'; do
    if [ "$(date +%s)" -ge "$deadline" ]; then
      echo "straggler-smoke: $1 never picked up a shard" >&2
      exit 1
    fi
    sleep 0.05
  done
}

echo "straggler-smoke: single-process reference run"
"$explore" "${flags[@]}" > "$dir/reference.txt"

echo "straggler-smoke: pass 1 — SIGSTOP a daemon mid-sweep"
start_daemon a1; start_daemon b1; start_daemon c1
"$explore" "${flags[@]}" "${fleetflags[@]}" -fleet "$url_a1,$url_b1,$url_c1" \
  > "$dir/straggler.txt" 2> "$dir/straggler.err" &
sweep=$!
wait_in_flight "$url_c1"
kill -STOP "$pid_c1"
echo "straggler-smoke: stopped daemon $url_c1 holding a shard in flight"
if ! wait "$sweep"; then
  echo "straggler-smoke: fleet sweep failed with a wedged daemon:" >&2
  cat "$dir/straggler.err" >&2
  exit 1
fi
if ! grep -q 'marked down' "$dir/straggler.err"; then
  echo "straggler-smoke: monitor never marked the wedged daemon down:" >&2
  cat "$dir/straggler.err" >&2
  exit 1
fi
if ! grep -qE 'speculate|steal' "$dir/straggler.err"; then
  echo "straggler-smoke: sweep finished without stealing the lost shard:" >&2
  cat "$dir/straggler.err" >&2
  exit 1
fi
diff "$dir/reference.txt" "$dir/straggler.txt"
echo "straggler-smoke: straggler output is byte-identical to the reference"
kill -CONT "$pid_c1" 2>/dev/null || true
kill "$pid_a1" "$pid_b1" "$pid_c1" 2>/dev/null || true

echo "straggler-smoke: pass 2 — SIGCONT a marked-down daemon mid-sweep"
start_daemon a2; start_daemon b2; start_daemon c2
kill -STOP "$pid_c2"
"$explore" "${flags[@]}" "${fleetflags[@]}" -fleet "$url_a2,$url_b2,$url_c2" \
  > "$dir/recovery.txt" 2> "$dir/recovery.err" &
sweep=$!
wait_for_line "$dir/recovery.err" 'marked down' "the stopped daemon to be marked down"
kill -CONT "$pid_c2"
wait_for_line "$dir/recovery.err" 'marked up' "the revived daemon to be marked up"
echo "straggler-smoke: revived daemon re-admitted mid-sweep"
if ! wait "$sweep"; then
  echo "straggler-smoke: fleet sweep failed across the mark-down/mark-up cycle:" >&2
  cat "$dir/recovery.err" >&2
  exit 1
fi
diff "$dir/reference.txt" "$dir/recovery.txt"
echo "straggler-smoke: recovery output is byte-identical to the reference"
