#!/usr/bin/env bash
# bench-smoke.sh — coarse throughput regression gate for CI.
#
# Runs BenchmarkSessionStreamSweep and compares each arm's reported
# points/sec AND allocs/op against a recorded baseline. Both gates are
# deliberately loose — a >25% throughput drop or a >25% allocation
# growth fails, anything less is noise on shared CI hardware — so they
# catch "the hot path got 5x slower" or "the zero-alloc path started
# allocating per point", not single-digit drift. (Allocations are
# deterministic, but GOMAXPROCS and slab boundaries move the per-op
# count a little between machines.) Precise numbers live in the
# checked-in BENCH_*.json snapshots (scripts/bench-baseline.sh), which
# are produced on one machine and reviewed by hand.
#
# The baseline is a plain "name points_per_sec allocs_per_op" text
# file kept outside the repo (in CI: an actions/cache entry, so it
# reflects CI hardware, not the dev machine). Baselines recorded
# before the allocs column existed carry two fields; those arms skip
# the alloc gate until the cache rolls over. When the file is absent the run cannot be
# judged: the script records the current numbers as the new baseline
# and exits 0, so the first run after a cache miss is a skip+record,
# and the next run gates against it.
#
# Usage: scripts/bench-smoke.sh [BASELINE_FILE]
#   BENCH_SMOKE_THRESHOLD  allowed regression in percent (default 25)
set -euo pipefail

baseline=${1:-.bench-smoke-baseline.txt}
threshold=${BENCH_SMOKE_THRESHOLD:-25}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "bench-smoke: running BenchmarkSessionStreamSweep" >&2
go test -run '^$' -bench '^BenchmarkSessionStreamSweep$' -benchmem -benchtime 2x . \
  | tee "$tmp/out.txt"

# One "name points_per_sec allocs_per_op" line per arm, from the
# benchmark's own wall-clock ReportMetric column and -benchmem.
awk '
  /points\/sec/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    pps = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
      if ($i == "points/sec") pps = $(i - 1)
      if ($i == "allocs/op")  allocs = $(i - 1)
    }
    if (pps != "") printf "%s %s %s\n", name, pps, allocs
  }
' "$tmp/out.txt" > "$tmp/current.txt"

if [[ ! -s "$tmp/current.txt" ]]; then
  echo "bench-smoke: FAIL — no points/sec lines in benchmark output" >&2
  exit 1
fi

if [[ ! -f "$baseline" ]]; then
  cp "$tmp/current.txt" "$baseline"
  echo "bench-smoke: no baseline at $baseline — recorded current numbers, skipping gate" >&2
  cat "$baseline" >&2
  exit 0
fi

echo "bench-smoke: gating against $baseline (threshold ${threshold}%)" >&2
awk -v threshold="$threshold" '
  NR == FNR { base_pps[$1] = $2; if (NF >= 3) base_allocs[$1] = $3; next }
  {
    name = $1; cur = $2; allocs = $3
    if (!(name in base_pps)) { printf "  %-60s %12.0f pts/s (new arm, no baseline)\n", name, cur; next }
    old = base_pps[name]
    pct = (old > 0) ? 100 * (cur - old) / old : 0
    verdict = "ok"
    if (pct < -threshold) { verdict = "REGRESSION"; failed = 1 }
    printf "  %-60s %12.0f pts/s vs %12.0f (%+.1f%%) %s\n", name, cur, old, pct, verdict
    if ((name in base_allocs) && allocs != "") {
      olda = base_allocs[name]
      apct = (olda > 0) ? 100 * (allocs - olda) / olda : 0
      averdict = "ok"
      if (apct > threshold) { averdict = "ALLOC REGRESSION"; failed = 1 }
      printf "  %-60s %12.0f allocs/op vs %12.0f (%+.1f%%) %s\n", name, allocs, olda, apct, averdict
    }
  }
  END { exit failed ? 1 : 0 }
' "$baseline" "$tmp/current.txt" || {
  echo "bench-smoke: FAIL — points/sec dropped or allocs/op grew more than ${threshold}% vs baseline" >&2
  exit 1
}
echo "bench-smoke: OK" >&2
