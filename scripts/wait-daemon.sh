#!/usr/bin/env bash
# wait-daemon.sh — wait for an actuaryd daemon to come up and print
# its base URL.
#
# The daemon announces "actuaryd listening on http://HOST:PORT" on
# stdout once its listener is bound (with -addr :0 the kernel-assigned
# port appears there). This script polls the daemon's log file for
# that line and echoes the URL, so smoke jobs share one copy of the
# wait-and-grep dance instead of each reimplementing it.
#
# Usage: url=$(scripts/wait-daemon.sh LOGFILE [TIMEOUT_SECONDS])
set -euo pipefail

log=${1:?usage: wait-daemon.sh LOGFILE [TIMEOUT_SECONDS]}
timeout=${2:-10}

deadline=$(( $(date +%s) + timeout ))
until grep -q 'listening on' "$log" 2>/dev/null; do
  if [ "$(date +%s)" -ge "$deadline" ]; then
    echo "wait-daemon: no 'listening on' line in $log after ${timeout}s" >&2
    if [ -f "$log" ]; then
      sed 's/^/wait-daemon: log: /' "$log" >&2
    fi
    exit 1
  fi
  sleep 0.1
done
grep -o 'http://[0-9.:]*' "$log" | head -n1
