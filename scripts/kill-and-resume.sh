#!/usr/bin/env bash
# kill-and-resume.sh — prove that a checkpointed sweep survives an
# uncatchable kill.
#
# The harness runs the same grid three ways:
#
#   1. uninterrupted, no checkpoint — the reference output;
#   2. with -checkpoint, SIGKILLed mid-sweep (no signal handler can
#      dress that up: whatever is on disk is what resume gets);
#   3. resumed from the checkpoint the killed run left behind.
#
# It then asserts the killed run produced no output, the resumed run
# reported resuming, the final output is byte-identical to the
# reference, and the checkpoint file was removed on success.
#
# Usage: [EXPLORE=path/to/explore] scripts/kill-and-resume.sh [WORKDIR]
# WORKDIR (default: a temp dir, removed on exit) keeps the artifacts
# for inspection when provided.
set -euo pipefail

explore=${EXPLORE:-./explore}
if [ -n "${1:-}" ]; then
  dir=$1
  mkdir -p "$dir"
else
  dir=$(mktemp -d)
  trap 'rm -rf "$dir"' EXIT
fi

# ~65k grid candidates: a second-plus of wall clock even on a fast
# runner, while the first checkpoint (every 500 candidates) lands
# within the first ~1% — so killing at the first checkpoint sits
# mid-sweep with two orders of magnitude of margin.
flags=(-mode sweep -nodes 5nm,7nm,12nm -schemes MCM,2.5D,InFO
       -area-range 100:1000:2 -count-range 1:16 -top 8)

echo "kill-and-resume: reference run"
"$explore" "${flags[@]}" > "$dir/uninterrupted.txt"

echo "kill-and-resume: checkpointed run, to be killed"
"$explore" "${flags[@]}" -checkpoint "$dir/cp.json" -checkpoint-every 500 \
  > "$dir/killed.txt" 2> "$dir/killed.err" &
pid=$!

# Kill as soon as the first checkpoint hits the disk: that is ~1% of
# the way into the grid, so the sweep is guaranteed to still be
# running however fast the machine (no fixed sleep to race against —
# the Go property tests already cover arbitrary interrupt depths;
# this harness exists to prove the real-SIGKILL path).
for _ in $(seq 1 400); do
  if [ -s "$dir/cp.json" ]; then break; fi
  sleep 0.05
done
if [ ! -s "$dir/cp.json" ]; then
  echo "kill-and-resume: no checkpoint appeared before the sweep finished" >&2
  exit 1
fi
kill -9 "$pid" 2>/dev/null || true
wait "$pid" && status=0 || status=$?
echo "kill-and-resume: killed mid-sweep (exit $status)"

if [ -s "$dir/killed.txt" ]; then
  echo "kill-and-resume: killed run unexpectedly produced output" >&2
  exit 1
fi
if [ ! -s "$dir/cp.json" ]; then
  echo "kill-and-resume: checkpoint file missing after the kill" >&2
  exit 1
fi

echo "kill-and-resume: resuming from $(wc -c < "$dir/cp.json") bytes of checkpoint"
"$explore" "${flags[@]}" -checkpoint "$dir/cp.json" -checkpoint-every 500 \
  > "$dir/resumed.txt" 2> "$dir/resumed.err"

if ! grep -q 'resuming from checkpoint' "$dir/resumed.err"; then
  echo "kill-and-resume: resumed run did not report resuming:" >&2
  cat "$dir/resumed.err" >&2
  exit 1
fi
if [ -f "$dir/cp.json" ]; then
  echo "kill-and-resume: checkpoint not removed after a successful run" >&2
  exit 1
fi

diff "$dir/uninterrupted.txt" "$dir/resumed.txt"
echo "kill-and-resume: resumed output is byte-identical to the uninterrupted run"
