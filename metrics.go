package actuary

import (
	"sync/atomic"
	"time"
)

// Back-pressure instrumentation for the streaming pipeline. Every
// Stream (and therefore every Evaluate, which rides on Stream)
// updates a set of lock-free counters on its Session: queue depth
// between the pump and the workers, requests in flight, worker busy
// time against worker lifetime, and per-question latency. Server
// deployments read them through Session.Metrics (and actuaryd's
// GET /metrics) to decide when to scale worker width.

// questionCount sizes the per-question counter table.
const questionCount = int(QuestionSearchBest) + 1

// sessionMetrics is the atomic state behind Session.Metrics.
type sessionMetrics struct {
	streamsStarted   atomic.Int64
	streamsCompleted atomic.Int64

	// queueDepth counts requests handed to the job queue and not yet
	// picked up by a worker; each enqueue records a depth sample so
	// mean depth is observable, not just the instantaneous gauge.
	queueDepth    atomic.Int64
	queueDepthMax atomic.Int64
	queueSamples  atomic.Int64
	queueSum      atomic.Int64

	// inFlight counts requests currently being evaluated.
	inFlight    atomic.Int64
	inFlightMax atomic.Int64

	// busyNanos accumulates time workers spent evaluating;
	// workerNanos accumulates the lifetime of exited workers. Running
	// workers are tracked live through activeWorkers and
	// activeStartSum (the sum of their start stamps), so utilization
	// is meaningful mid-stream, not only between streams.
	busyNanos      atomic.Int64
	workerNanos    atomic.Int64
	activeWorkers  atomic.Int64
	activeStartSum atomic.Int64

	perQuestion [questionCount]questionCounters
}

// workerStarted registers a live worker.
func (m *sessionMetrics) workerStarted(start time.Time) {
	m.activeWorkers.Add(1)
	m.activeStartSum.Add(start.UnixNano())
}

// workerStopped retires a worker, folding its lifetime into the
// completed total.
func (m *sessionMetrics) workerStopped(start time.Time) {
	m.workerNanos.Add(int64(time.Since(start)))
	m.activeStartSum.Add(-start.UnixNano())
	m.activeWorkers.Add(-1)
}

// workerTime returns total worker lifetime: exited workers plus the
// live tenure of running ones. The loads are not one consistent cut,
// so the live term is clamped at zero.
func (m *sessionMetrics) workerTime() time.Duration {
	total := m.workerNanos.Load()
	if n := m.activeWorkers.Load(); n > 0 {
		if live := n*time.Now().UnixNano() - m.activeStartSum.Load(); live > 0 {
			total += live
		}
	}
	return time.Duration(total)
}

type questionCounters struct {
	count    atomic.Int64
	failures atomic.Int64
	nanos    atomic.Int64
	maxNanos atomic.Int64
}

// updateMax lifts m to v if v is larger (lock-free).
func updateMax(m *atomic.Int64, v int64) {
	for {
		cur := m.Load()
		if v <= cur || m.CompareAndSwap(cur, v) {
			return
		}
	}
}

// enqueued records one request about to enter the job queue. It runs
// before the channel send so the worker-side decrement can never win
// the race and drive the gauge negative.
func (m *sessionMetrics) enqueued() {
	depth := m.queueDepth.Add(1)
	updateMax(&m.queueDepthMax, depth)
	m.queueSamples.Add(1)
	m.queueSum.Add(depth)
}

// enqueueAborted rolls back an enqueued() whose send was abandoned on
// cancellation (the sample stays: it observed a real depth).
func (m *sessionMetrics) enqueueAborted() {
	m.queueDepth.Add(-1)
}

// enqueuedSlab is enqueued() for a slab of n requests: the gauge
// moves once and each request records the post-add depth as its
// sample, so MeanQueueDepth stays comparable with point dispatch
// without n round trips through the atomics.
func (m *sessionMetrics) enqueuedSlab(n int) {
	depth := m.queueDepth.Add(int64(n))
	updateMax(&m.queueDepthMax, depth)
	m.queueSamples.Add(int64(n))
	m.queueSum.Add(int64(n) * depth)
}

func (m *sessionMetrics) enqueueAbortedSlab(n int) {
	m.queueDepth.Add(int64(-n))
}

// dequeuedSlab moves the queue gauge for a whole slab at once; the
// per-request finished() calls still retire inFlight one at a time.
func (m *sessionMetrics) dequeuedSlab(n int) {
	m.queueDepth.Add(int64(-n))
	updateMax(&m.inFlightMax, m.inFlight.Add(int64(n)))
}

// dequeued records a worker picking a request up.
func (m *sessionMetrics) dequeued() {
	m.queueDepth.Add(-1)
	updateMax(&m.inFlightMax, m.inFlight.Add(1))
}

// finished records one evaluated request: its latency, outcome and
// question.
func (m *sessionMetrics) finished(q Question, d time.Duration, failed bool) {
	m.inFlight.Add(-1)
	m.busyNanos.Add(int64(d))
	if q < 0 || int(q) >= questionCount {
		return
	}
	qc := &m.perQuestion[q]
	qc.count.Add(1)
	if failed {
		qc.failures.Add(1)
	}
	qc.nanos.Add(int64(d))
	updateMax(&qc.maxNanos, int64(d))
}

// finishedRun records a run of n same-question requests evaluated in
// one batch: the gauges and counters move once for the lot. Run timing
// is not resolved per request, so the max-latency tracker observes the
// run's per-request mean — an underestimate for a run with one
// outlier, but run points are homogeneous by construction.
func (m *sessionMetrics) finishedRun(q Question, total time.Duration, n, failures int) {
	if n <= 0 {
		return
	}
	m.inFlight.Add(int64(-n))
	m.busyNanos.Add(int64(total))
	if q < 0 || int(q) >= questionCount {
		return
	}
	qc := &m.perQuestion[q]
	qc.count.Add(int64(n))
	if failures > 0 {
		qc.failures.Add(int64(failures))
	}
	qc.nanos.Add(int64(total))
	updateMax(&qc.maxNanos, int64(total)/int64(n))
}

// QuestionMetrics is the latency profile of one question kind.
type QuestionMetrics struct {
	// Question identifies the kind.
	Question Question
	// Count and Failures tally evaluated requests and how many of
	// them returned an error.
	Count    int64
	Failures int64
	// TotalLatency and MaxLatency aggregate evaluation time
	// (excluding queue wait).
	TotalLatency time.Duration
	MaxLatency   time.Duration
}

// AvgLatency returns the mean evaluation latency (0 before any
// request).
func (q QuestionMetrics) AvgLatency() time.Duration {
	if q.Count == 0 {
		return 0
	}
	return q.TotalLatency / time.Duration(q.Count)
}

// SessionMetrics is a point-in-time snapshot of a session's
// back-pressure counters. Gauges (QueueDepth, InFlight) and worker
// lifetime read live values, so the snapshot is meaningful both
// mid-stream and at rest.
type SessionMetrics struct {
	// StreamsStarted and StreamsCompleted count Stream invocations
	// (Evaluate calls stream internally and are included).
	StreamsStarted   int64
	StreamsCompleted int64

	// QueueDepth is the instantaneous number of requests waiting for
	// a worker; QueueDepthMax is the high-water mark. QueueDepthSum
	// over QueueDepthSamples is the mean depth observed at enqueue
	// time — the back-pressure signal: a mean near the in-flight
	// bound means generation outruns the pool (add workers), a mean
	// near zero means the pool is starved by generation or by a slow
	// consumer.
	QueueDepth        int64
	QueueDepthMax     int64
	QueueDepthSamples int64
	QueueDepthSum     int64

	// InFlight is the instantaneous number of requests being
	// evaluated; InFlightMax is the high-water mark.
	InFlight    int64
	InFlightMax int64

	// WorkerBusy is the cumulative time workers spent on completed
	// evaluations; WorkerTime is cumulative worker lifetime,
	// including workers still running.
	WorkerBusy time.Duration
	WorkerTime time.Duration

	// PerQuestion profiles each question kind seen so far, in
	// Question order; kinds with no traffic are omitted.
	PerQuestion []QuestionMetrics
}

// MeanQueueDepth returns the average depth observed at enqueue time
// (0 before any request). Each sample counts the request being
// enqueued, so a stream that never backs up still reports a mean
// of 1.
func (m SessionMetrics) MeanQueueDepth() float64 {
	if m.QueueDepthSamples == 0 {
		return 0
	}
	return float64(m.QueueDepthSum) / float64(m.QueueDepthSamples)
}

// Utilization returns the fraction of worker lifetime spent
// evaluating, in [0, 1] (0 before any request has completed). During
// a stream it slightly undercounts — evaluations in progress are not
// yet in WorkerBusy — and converges as requests retire.
func (m SessionMetrics) Utilization() float64 {
	if m.WorkerTime <= 0 {
		return 0
	}
	u := float64(m.WorkerBusy) / float64(m.WorkerTime)
	if u > 1 {
		u = 1
	}
	return u
}

// Requests returns the total evaluated request count.
func (m SessionMetrics) Requests() int64 {
	var n int64
	for _, q := range m.PerQuestion {
		n += q.Count
	}
	return n
}

// Failures returns the total failed request count.
func (m SessionMetrics) Failures() int64 {
	var n int64
	for _, q := range m.PerQuestion {
		n += q.Failures
	}
	return n
}

// MetricsDelta is the activity between two SessionMetrics snapshots
// of the same session — the windowed form of the back-pressure
// signal. Cumulative counters make a long-lived daemon's lifetime
// utilization converge to a constant; a controller deciding whether
// the pool is busy *now* (fleet.Resizer) needs the interval view.
type MetricsDelta struct {
	// Requests and Failures count results retired during the window.
	Requests int64
	Failures int64
	// WorkerBusy and WorkerTime are the window's shares of the
	// cumulative busy/lifetime counters.
	WorkerBusy time.Duration
	WorkerTime time.Duration
	// QueueDepthSamples and QueueDepthSum are the window's queue-depth
	// observations.
	QueueDepthSamples int64
	QueueDepthSum     int64
}

// Delta returns the activity between an earlier snapshot prev and
// this one. Negative intervals (snapshots swapped, or from different
// sessions) clamp to zero rather than reporting nonsense.
func (m SessionMetrics) Delta(prev SessionMetrics) MetricsDelta {
	pos := func(v int64) int64 {
		if v < 0 {
			return 0
		}
		return v
	}
	d := MetricsDelta{
		Requests:          pos(m.Requests() - prev.Requests()),
		Failures:          pos(m.Failures() - prev.Failures()),
		WorkerBusy:        time.Duration(pos(int64(m.WorkerBusy - prev.WorkerBusy))),
		WorkerTime:        time.Duration(pos(int64(m.WorkerTime - prev.WorkerTime))),
		QueueDepthSamples: pos(m.QueueDepthSamples - prev.QueueDepthSamples),
		QueueDepthSum:     pos(m.QueueDepthSum - prev.QueueDepthSum),
	}
	return d
}

// Utilization returns the busy share of worker lifetime within the
// window, in [0, 1] (0 for an empty window).
func (d MetricsDelta) Utilization() float64 {
	if d.WorkerTime <= 0 {
		return 0
	}
	u := float64(d.WorkerBusy) / float64(d.WorkerTime)
	if u > 1 {
		u = 1
	}
	return u
}

// MeanQueueDepth returns the mean depth observed at enqueue time
// within the window (0 for a window with no enqueues).
func (d MetricsDelta) MeanQueueDepth() float64 {
	if d.QueueDepthSamples == 0 {
		return 0
	}
	return float64(d.QueueDepthSum) / float64(d.QueueDepthSamples)
}

// Metrics snapshots the session's back-pressure counters. It is safe
// to call concurrently with running streams; counters are read
// atomically but not as one consistent cut.
func (s *Session) Metrics() SessionMetrics {
	m := s.metrics
	snap := SessionMetrics{
		StreamsStarted:    m.streamsStarted.Load(),
		StreamsCompleted:  m.streamsCompleted.Load(),
		QueueDepth:        m.queueDepth.Load(),
		QueueDepthMax:     m.queueDepthMax.Load(),
		QueueDepthSamples: m.queueSamples.Load(),
		QueueDepthSum:     m.queueSum.Load(),
		InFlight:          m.inFlight.Load(),
		InFlightMax:       m.inFlightMax.Load(),
		WorkerBusy:        time.Duration(m.busyNanos.Load()),
		WorkerTime:        m.workerTime(),
	}
	for i := range m.perQuestion {
		qc := &m.perQuestion[i]
		count := qc.count.Load()
		if count == 0 {
			continue
		}
		snap.PerQuestion = append(snap.PerQuestion, QuestionMetrics{
			Question:     Question(i),
			Count:        count,
			Failures:     qc.failures.Load(),
			TotalLatency: time.Duration(qc.nanos.Load()),
			MaxLatency:   time.Duration(qc.maxNanos.Load()),
		})
	}
	return snap
}
