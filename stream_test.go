package actuary_test

import (
	"context"
	"sort"
	"strings"
	"sync"
	"testing"

	"chipletactuary"
)

func testGrid(areas []float64, counts []int) actuary.SweepGrid {
	return actuary.SweepGrid{
		Name:       "grid",
		Nodes:      []string{"5nm"},
		Schemes:    []actuary.Scheme{actuary.MCM},
		AreasMM2:   areas,
		Counts:     counts,
		Quantities: []float64{1_000_000},
		D2D:        actuary.D2DFraction(0.10),
	}
}

// countingSource wraps a RequestSource and counts how many requests
// have been pulled from it.
type countingSource struct {
	inner actuary.RequestSource
	mu    sync.Mutex
	calls int
}

func (c *countingSource) Next() (actuary.Request, bool) {
	c.mu.Lock()
	c.calls++
	c.mu.Unlock()
	return c.inner.Next()
}

func (c *countingSource) pulled() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

// TestStreamMatchesEvaluate runs the same sweep through the streaming
// and the materialized paths and compares every answer by ID.
func TestStreamMatchesEvaluate(t *testing.T) {
	s := newTestSession(t, actuary.WithWorkers(4))
	grid := testGrid([]float64{300, 500, 800}, []int{1, 2, 3, 4})

	src, err := actuary.SweepSource(grid.Points(), actuary.QuestionTotalCost, actuary.PerSystemUnit)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := s.Stream(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	streamed := make(map[string]float64)
	for r := range ch {
		if r.Err != nil {
			t.Fatalf("streamed request %q failed: %v", r.ID, r.Err)
		}
		streamed[r.ID] = r.TotalCost.Total()
	}

	matSrc, err := actuary.SweepSource(grid.Points(), actuary.QuestionTotalCost, actuary.PerSystemUnit)
	if err != nil {
		t.Fatal(err)
	}
	var reqs []actuary.Request
	for {
		r, ok := matSrc.Next()
		if !ok {
			break
		}
		reqs = append(reqs, r)
	}
	if len(reqs) != grid.Size() {
		t.Fatalf("materialized %d requests, want %d", len(reqs), grid.Size())
	}
	for _, r := range s.Evaluate(context.Background(), reqs) {
		if r.Err != nil {
			t.Fatalf("materialized request %q failed: %v", r.ID, r.Err)
		}
		got, ok := streamed[r.ID]
		if !ok {
			t.Fatalf("streamed path missing %q", r.ID)
		}
		if got != r.TotalCost.Total() {
			t.Errorf("%q: streamed %v != materialized %v", r.ID, got, r.TotalCost.Total())
		}
	}
	if len(streamed) != len(reqs) {
		t.Errorf("streamed %d results, materialized %d", len(streamed), len(reqs))
	}
}

// TestStreamLazyGeneration proves generation is demand-driven: with a
// bounded in-flight window and a consumer that stops after one result,
// a huge source is barely touched.
func TestStreamLazyGeneration(t *testing.T) {
	s := newTestSession(t, actuary.WithWorkers(2))
	grid := testGrid(mustAreaRange(t, 50, 549, 1), []int{1, 2, 4, 8}) // 2000 candidate points
	inner, err := actuary.SweepSource(grid.Points(), actuary.QuestionRE, actuary.PerSystemUnit)
	if err != nil {
		t.Fatal(err)
	}
	src := &countingSource{inner: inner}
	ctx, cancel := context.WithCancel(context.Background())
	ch, err := s.Stream(ctx, src, actuary.StreamInFlight(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := <-ch; !ok {
		t.Fatal("stream closed before the first result")
	}
	cancel()
	for range ch { // drain so the workers exit
	}
	// The pump may run ahead by the in-flight window plus what the
	// workers grabbed, but never materializes the sweep.
	if pulled := src.pulled(); pulled > 64 {
		t.Errorf("consumed 1 of 2000 results but the source was pulled %d times", pulled)
	}
}

func mustAreaRange(t *testing.T, lo, hi, step float64) []float64 {
	t.Helper()
	axis, err := actuary.SweepAreaRange(lo, hi, step)
	if err != nil {
		t.Fatal(err)
	}
	return axis
}

// TestStreamAggregatorsMatchFullSort streams a sweep through CostTopK
// and CostPareto and checks them against sorting the materialized
// results.
func TestStreamAggregatorsMatchFullSort(t *testing.T) {
	s := newTestSession(t)
	grid := testGrid([]float64{200, 400, 600, 800}, []int{1, 2, 3, 4, 5})
	src, err := actuary.SweepSource(grid.Points(), actuary.QuestionTotalCost, actuary.PerSystemUnit)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := s.Stream(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	top := actuary.NewCostTopK(5)
	front := actuary.NewCostPareto()
	var stats actuary.StreamStats
	var all []actuary.Result
	for r := range ch {
		top.Observe(r)
		front.Observe(r)
		stats.Observe(r)
		if r.Err == nil {
			all = append(all, r)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].TotalCost.Total() < all[j].TotalCost.Total() })
	got := top.Results()
	if len(got) != 5 {
		t.Fatalf("top-K kept %d, want 5", len(got))
	}
	for i := range got {
		if got[i].ID != all[i].ID {
			t.Errorf("top-%d = %q, want %q", i, got[i].ID, all[i].ID)
		}
	}
	// Every front member must be non-dominated within the full set.
	for _, f := range front.Front() {
		for _, o := range all {
			if o.TotalCost.RE.Total() <= f.TotalCost.RE.Total() &&
				o.TotalCost.NRE.Total() <= f.TotalCost.NRE.Total() &&
				(o.TotalCost.RE.Total() < f.TotalCost.RE.Total() ||
					o.TotalCost.NRE.Total() < f.TotalCost.NRE.Total()) {
				t.Errorf("front member %q is dominated by %q", f.ID, o.ID)
			}
		}
	}
	if stats.OK != len(all) || stats.Failed != 0 {
		t.Errorf("stats = %+v, want %d ok", stats, len(all))
	}
	if stats.Cost.MinID != all[0].ID {
		t.Errorf("summary min %q, want %q", stats.Cost.MinID, all[0].ID)
	}
}

// TestStreamCancellation cancels mid-stream and checks the channel
// closes without deadlock.
func TestStreamCancellation(t *testing.T) {
	s := newTestSession(t, actuary.WithWorkers(2))
	grid := testGrid(mustAreaRange(t, 100, 599, 1), []int{1, 2})
	src, err := actuary.SweepSource(grid.Points(), actuary.QuestionRE, actuary.PerSystemUnit)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch, err := s.Stream(ctx, src)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for range ch {
		n++
		if n == 10 {
			cancel()
		}
	}
	if n >= grid.Size() {
		t.Errorf("cancellation did not stop the stream: %d results of %d", n, grid.Size())
	}
}

// TestStreamErrors covers the nil-source and unsupported-question
// guards.
func TestStreamErrors(t *testing.T) {
	s := newTestSession(t)
	if _, err := s.Stream(context.Background(), nil); err == nil {
		t.Error("nil source accepted")
	}
	grid := testGrid([]float64{400}, []int{2})
	if _, err := actuary.SweepSource(grid.Points(), actuary.QuestionAreaCrossover, actuary.PerSystemUnit); err == nil {
		t.Error("SweepSource accepted a non-per-system question")
	}
}

// TestSessionSweepBest answers the one-request whole-sweep question
// and cross-checks the winner against the materialized path.
func TestSessionSweepBest(t *testing.T) {
	s := newTestSession(t)
	grid := testGrid([]float64{300, 500, 700, 900}, []int{1, 2, 3, 4})
	r := s.Evaluate(context.Background(), []actuary.Request{{
		ID: "best", Question: actuary.QuestionSweepBest, Grid: &grid, TopK: 3,
	}})[0]
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	b := r.SweepBest
	if b == nil || len(b.Top) != 3 {
		t.Fatalf("sweep-best payload: %+v", b)
	}
	for i := 1; i < len(b.Top); i++ {
		if b.Top[i].Total.Total() < b.Top[i-1].Total.Total() {
			t.Errorf("top points not sorted ascending at %d", i)
		}
	}
	// The 900 mm² monolithic point exceeds the reticle: pruned.
	if b.Pruned == 0 {
		t.Error("expected at least one reticle-pruned point")
	}
	for _, p := range b.Top {
		if p.AreaMM2 == 900 && p.K == 1 {
			t.Error("reticle-infeasible point survived into the top list")
		}
	}
	if b.Summary.Count != grid.Size()-b.Pruned-b.Deduped-b.Infeasible {
		t.Errorf("summary count %d inconsistent with %d points, %d pruned, %d deduped, %d infeasible",
			b.Summary.Count, grid.Size(), b.Pruned, b.Deduped, b.Infeasible)
	}
	if len(b.Pareto) == 0 {
		t.Error("empty Pareto front")
	}

	// The winner must agree with evaluating every surviving point.
	var reqs []actuary.Request
	gen := grid.Points(actuary.SweepReticleFit(), actuary.SweepInterposerFit(s.Packaging()))
	for {
		p, ok := gen.Next()
		if !ok {
			break
		}
		reqs = append(reqs, actuary.Request{ID: p.ID, Question: actuary.QuestionTotalCost, System: p.System})
	}
	bestID, bestCost := "", 0.0
	for _, rr := range s.Evaluate(context.Background(), reqs) {
		if rr.Err != nil {
			continue
		}
		if bestID == "" || rr.TotalCost.Total() < bestCost {
			bestID, bestCost = rr.ID, rr.TotalCost.Total()
		}
	}
	if got := b.Top[0]; got.ID != bestID || got.Total.Total() != bestCost {
		t.Errorf("sweep-best winner %q (%v) != materialized winner %q (%v)",
			got.ID, got.Total.Total(), bestID, bestCost)
	}
}

// TestSessionSweepBestErrors covers the failure taxonomy of the
// sweep-best question.
func TestSessionSweepBestErrors(t *testing.T) {
	s := newTestSession(t)
	cases := []struct {
		name string
		req  actuary.Request
		want actuary.ErrorCode
	}{
		{"missing grid", actuary.Request{Question: actuary.QuestionSweepBest}, actuary.ErrInvalidConfig},
		{"invalid grid", actuary.Request{Question: actuary.QuestionSweepBest,
			Grid: &actuary.SweepGrid{Name: "empty"}}, actuary.ErrInvalidConfig},
		{"nothing feasible", func() actuary.Request {
			g := testGrid([]float64{2000}, []int{1}) // far beyond the reticle
			return actuary.Request{Question: actuary.QuestionSweepBest, Grid: &g}
		}(), actuary.ErrInfeasible},
		{"unknown node", func() actuary.Request {
			g := testGrid([]float64{400}, []int{2})
			g.Nodes = []string{"1nm-imaginary"}
			return actuary.Request{Question: actuary.QuestionSweepBest, Grid: &g}
		}(), actuary.ErrUnknownNode}, // the first per-point cause keeps the taxonomy
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := s.Evaluate(context.Background(), []actuary.Request{tc.req})[0]
			ae, ok := actuary.AsError(r.Err)
			if !ok {
				t.Fatalf("want a structured error, got %v", r.Err)
			}
			if ae.Code != tc.want {
				t.Errorf("code %v, want %v", ae.Code, tc.want)
			}
		})
	}
}

// TestScenarioSourceMatchesRequests drains the lazy source and
// compares it request-by-request with the materialized batch.
func TestScenarioSourceMatchesRequests(t *testing.T) {
	cfg := actuary.ScenarioConfig{
		Name:      "both-paths",
		Questions: []string{"total-cost", "wafers", "crossover-quantity", "optimal-chiplet-count", "sweep-best"},
		Systems: []actuary.SystemConfig{{
			Name: "explicit", Scheme: "MCM", Quantity: 1000,
			Chiplets: []actuary.ChipletConfig{{Name: "c", Node: "7nm", ModuleAreaMM2: 100, Count: 2}},
		}},
		Sweeps: []actuary.SweepConfig{{
			Name: "sw", Node: "5nm", Scheme: "MCM", D2DFraction: 0.10,
			Quantity: 1_000_000, AreasMM2: []float64{400, 800}, Counts: []int{1, 2, 4},
		}},
	}
	reqs, err := cfg.Requests()
	if err != nil {
		t.Fatal(err)
	}
	src, err := cfg.Source()
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range reqs {
		got, ok := src.Next()
		if !ok {
			t.Fatalf("source exhausted at %d of %d", i, len(reqs))
		}
		if got.ID != want.ID || got.Question != want.Question {
			t.Errorf("request %d: source %q/%v, slice %q/%v", i, got.ID, got.Question, want.ID, want.Question)
		}
	}
	if _, ok := src.Next(); ok {
		t.Error("source yields more requests than the materialized batch")
	}
	// The new question emits one request per sweep.
	found := false
	for _, r := range reqs {
		if r.Question == actuary.QuestionSweepBest {
			found = true
			if r.ID != "sw/sweep-best" || r.Grid == nil {
				t.Errorf("sweep-best request malformed: %+v", r)
			}
		}
	}
	if !found {
		t.Error("scenario lost the sweep-best question")
	}
}

// TestStreamHugeSweep pushes a 100k-point scenario sweep through
// Session.Stream with O(K) aggregation — the acceptance check that
// sweep size no longer implies materialization.
func TestStreamHugeSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-point sweep is slow; run without -short")
	}
	cfg := actuary.ScenarioConfig{
		Name: "huge",
		Sweeps: []actuary.SweepConfig{{
			Name: "huge", Node: "5nm", Scheme: "MCM", D2DFraction: 0.10,
			Quantity:   1_000_000,
			AreaRange:  &actuary.AreaRangeConfig{LoMM2: 50, HiMM2: 674.95, StepMM2: 0.05},
			CountRange: &actuary.CountRangeConfig{Lo: 1, Hi: 8},
		}},
	}
	src, err := cfg.Source()
	if err != nil {
		t.Fatal(err)
	}
	s := newTestSession(t)
	ch, err := s.Stream(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	top := actuary.NewCostTopK(10)
	var stats actuary.StreamStats
	n := actuary.Reduce(ch, top, &stats)
	if n != 100_000 {
		t.Fatalf("streamed %d results, want 100000", n)
	}
	if stats.Failed != 0 {
		t.Errorf("%d requests failed", stats.Failed)
	}
	got := top.Results()
	if len(got) != 10 {
		t.Fatalf("top-10 kept %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].TotalCost.Total() < got[i-1].TotalCost.Total() {
			t.Errorf("top list not sorted at %d", i)
		}
	}
	if !strings.HasPrefix(got[0].ID, "huge-") {
		t.Errorf("unexpected winner ID %q", got[0].ID)
	}
}

// TestAggregatorsUnpackSweepBest checks whole-sweep answers feed the
// stream aggregators point by point, so -top/-pareto work on
// sweep-best-only scenarios.
func TestAggregatorsUnpackSweepBest(t *testing.T) {
	s := newTestSession(t)
	grid := testGrid([]float64{300, 500, 700}, []int{1, 2, 4})
	r := s.Evaluate(context.Background(), []actuary.Request{{
		ID: "sw/sweep-best", Question: actuary.QuestionSweepBest, Grid: &grid, TopK: 4,
	}})[0]
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	top := actuary.NewCostTopK(2)
	front := actuary.NewCostPareto()
	var stats actuary.StreamStats
	for _, agg := range []actuary.StreamAggregator{top, front, &stats} {
		agg.Observe(r)
	}
	got := top.Results()
	if len(got) != 2 {
		t.Fatalf("top kept %d results", len(got))
	}
	for i, want := range r.SweepBest.Top[:2] {
		if got[i].ID != want.ID || got[i].TotalCost.Total() != want.Total.Total() {
			t.Errorf("top[%d] = %q (%v), want %q (%v)", i, got[i].ID,
				got[i].TotalCost.Total(), want.ID, want.Total.Total())
		}
	}
	if len(front.Front()) != len(r.SweepBest.Pareto) {
		t.Errorf("front size %d, want %d", len(front.Front()), len(r.SweepBest.Pareto))
	}
	if stats.OK != 1 || stats.Skipped != 0 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.Cost.Count != r.SweepBest.Summary.Count || stats.Cost.MinID != r.SweepBest.Summary.MinID {
		t.Errorf("summary not merged: %+v vs %+v", stats.Cost, r.SweepBest.Summary)
	}
}

// TestStreamSpecOptions pins the StreamSpec-to-option translation: a
// zero spec contributes nothing (session defaults apply untouched)
// and a populated spec streams exactly as the equivalent explicit
// option list — the contract that lets server, client.Local and the
// fleet stream coordinator share one tuning struct.
func TestStreamSpecOptions(t *testing.T) {
	if opts := (actuary.StreamSpec{}).Options(); len(opts) != 0 {
		t.Fatalf("zero spec yields %d options", len(opts))
	}
	full := actuary.StreamSpec{InFlight: 3, SlabSize: 2, ResumeAt: 4, Ordered: true}
	if opts := full.Options(); len(opts) != 4 {
		t.Fatalf("full spec yields %d options, want 4", len(opts))
	}

	s := newTestSession(t, actuary.WithWorkers(4))
	grid := testGrid([]float64{300, 500, 800}, []int{1, 2, 3, 4})
	drain := func(opts ...actuary.StreamOption) []actuary.Result {
		t.Helper()
		src, err := actuary.SweepSource(grid.Points(), actuary.QuestionTotalCost, actuary.PerSystemUnit)
		if err != nil {
			t.Fatal(err)
		}
		ch, err := s.Stream(context.Background(), src, opts...)
		if err != nil {
			t.Fatal(err)
		}
		var out []actuary.Result
		for r := range ch {
			out = append(out, r)
		}
		return out
	}
	spec := actuary.StreamSpec{InFlight: 2, ResumeAt: 4, Ordered: true}
	viaSpec := drain(spec.Options()...)
	explicit := drain(actuary.StreamInFlight(2), actuary.StreamResumeAt(4), actuary.StreamOrdered())
	if len(viaSpec) != len(explicit) || len(viaSpec) == 0 {
		t.Fatalf("spec stream has %d results, explicit %d", len(viaSpec), len(explicit))
	}
	for i := range viaSpec {
		if viaSpec[i].ID != explicit[i].ID || viaSpec[i].Index != explicit[i].Index {
			t.Errorf("result %d: spec %q@%d, explicit %q@%d", i,
				viaSpec[i].ID, viaSpec[i].Index, explicit[i].ID, explicit[i].Index)
		}
	}
	if viaSpec[0].Index != 4 {
		t.Errorf("resumed stream starts at index %d, want 4", viaSpec[0].Index)
	}
}
