// Package actuary is a quantitative cost model for multi-chiplet VLSI
// systems, reproducing "Chiplet Actuary: A Quantitative Cost Model and
// Multi-Chiplet Architecture Exploration" (Feng & Ma, DAC 2022).
//
// The model compares monolithic SoCs against MCM, InFO and 2.5D
// multi-chip integration on both recurring cost (wafers, dies,
// packaging, yield losses, wasted known-good dies) and non-recurring
// cost (module/chip/package design, masks, IP, D2D interfaces),
// amortized over production quantity.
//
// Quick start — batch evaluation over a concurrent Session:
//
//	s, err := actuary.NewSession()
//	soc := actuary.Monolithic("big-soc", "5nm", 800, 2_000_000)
//	mcm, err := actuary.PartitionEqual("big-mcm", "5nm", 800, 2,
//	    actuary.MCM, actuary.D2DFraction(0.10), 2_000_000)
//	results := s.Evaluate(ctx, []actuary.Request{
//	    {Question: actuary.QuestionTotalCost, System: soc},
//	    {Question: actuary.QuestionTotalCost, System: mcm},
//	})
//	fmt.Println(results[1].TotalCost.Total())
//
// Results come back in input order; each failed request carries a
// structured *actuary.Error instead of sinking the batch. The legacy
// single-shot Actuary handle remains as a deprecated wrapper.
//
// Design-space sweeps should stream instead of materializing: a lazy
// SweepGrid generator feeds Session.Stream, and online aggregators
// (CostTopK, CostPareto, StreamStats) reduce arbitrarily large grids
// in O(K) memory — see the stream.go API and QuestionSweepBest.
//
// Every API type has a canonical JSON wire form (wire.go) served over
// HTTP by cmd/actuaryd and spoken by the client package, so remote
// and in-process evaluation are interchangeable; Session.Metrics
// exposes the stream's back-pressure counters for such deployments.
//
// The internal packages (yield, wafer geometry, technology database,
// packaging, NRE, reuse schemes, exploration, paper experiments) are
// exposed here through type aliases, so this package is the only
// import a downstream user needs.
package actuary

import (
	"context"
	"fmt"

	"chipletactuary/internal/cost"
	"chipletactuary/internal/dtod"
	"chipletactuary/internal/explore"
	"chipletactuary/internal/montecarlo"
	"chipletactuary/internal/nre"
	"chipletactuary/internal/packaging"
	"chipletactuary/internal/reuse"
	"chipletactuary/internal/system"
	"chipletactuary/internal/tech"
)

// Core architecture types (Eq. 3).
type (
	// Module is an indivisible group of functional units.
	Module = system.Module
	// Chiplet is a die: modules plus a D2D interface on a node.
	Chiplet = system.Chiplet
	// Placement mounts copies of a chiplet in a package.
	Placement = system.Placement
	// System is one product: placements + integration + quantity.
	System = system.System
	// Envelope is a reused package design shared by several systems.
	Envelope = system.Envelope
	// SalvageSpec enables EPYC-style partial-good harvesting on a
	// chiplet.
	SalvageSpec = system.SalvageSpec
)

// Technology and parameters.
type (
	// TechNode holds one process node's manufacturing and NRE
	// parameters.
	TechNode = tech.Node
	// TechDatabase is a collection of nodes, loadable from JSON.
	TechDatabase = tech.Database
	// PackagingParams are the packaging-technology constants.
	PackagingParams = packaging.Params
)

// Integration schemes and assembly flows.
type (
	// Scheme is an integration technology (SoC, MCM, InFO, 2.5D).
	Scheme = packaging.Scheme
	// Flow is the assembly order of Eq. (5).
	Flow = packaging.Flow
)

// Scheme and flow constants.
const (
	SoC           = packaging.SoC
	MCM           = packaging.MCM
	InFO          = packaging.InFO
	TwoPointFiveD = packaging.TwoPointFiveD

	ChipLast  = packaging.ChipLast
	ChipFirst = packaging.ChipFirst
)

// Cost results.
type (
	// REBreakdown is the five-part recurring cost of §3.2.
	REBreakdown = cost.Breakdown
	// DieCost is the per-die cost detail inside an REBreakdown.
	DieCost = cost.DieCost
	// WaferDemand is the production-planning view: wafer starts per
	// node for a production run.
	WaferDemand = cost.WaferDemand
	// NREBreakdown is the amortized NRE per unit, by design kind.
	NREBreakdown = nre.Breakdown
	// TotalCost combines RE and amortized NRE for one system unit.
	TotalCost = explore.TotalCost
	// AmortizationPolicy selects how shared designs split their NRE.
	AmortizationPolicy = nre.Policy
)

// Amortization policies.
const (
	PerSystemUnit = nre.PerSystemUnit
	PerInstance   = nre.PerInstance
)

// D2D interface models.
type (
	// D2DOverhead sizes the die-to-die interface area of a chiplet.
	D2DOverhead = dtod.Overhead
	// D2DPHY describes an interface technology (Figure 1).
	D2DPHY = dtod.PHY
	// D2DBeachfront sizes the interface from a bandwidth demand.
	D2DBeachfront = dtod.Beachfront
	// D2DTopology selects how chiplets interconnect (hub, mesh,
	// fully connected) for the scaled interface model.
	D2DTopology = dtod.Topology
	// D2DScaled grows the interface area with the link count.
	D2DScaled = dtod.Scaled
)

// D2D topologies for D2DScaled.
const (
	D2DHub            = dtod.Hub
	D2DMesh           = dtod.Mesh
	D2DFullyConnected = dtod.FullyConnected
)

// CalibrateScaledD2D anchors a scaled D2D model to a reference
// configuration's area fraction (e.g. the paper's 10% at 2 chiplets).
var CalibrateScaledD2D = dtod.CalibrateScaled

// Reuse scheme configurations (§5).
type (
	SCMSConfig = reuse.SCMSConfig
	OCMEConfig = reuse.OCMEConfig
	FSMCConfig = reuse.FSMCConfig
)

// Re-exported constructors and helpers.
var (
	// DefaultTech returns the built-in technology database.
	DefaultTech = tech.Default
	// LoadTechFile reads a technology database from a JSON file.
	LoadTechFile = tech.LoadFile
	// DefaultPackaging returns the calibrated packaging constants.
	DefaultPackaging = packaging.DefaultParams
	// ParseScheme converts "SoC"/"MCM"/"InFO"/"2.5D" to a Scheme.
	ParseScheme = packaging.ParseScheme

	// Monolithic builds a single-die SoC system.
	Monolithic = system.Monolithic
	// PartitionEqual splits a module area into k equal chiplets.
	PartitionEqual = system.PartitionEqual
	// PartitionWeighted splits a module area by weights.
	PartitionWeighted = system.PartitionWeighted

	// SCMS, OCME and FSMC build the §5 reuse-scheme families.
	SCMS = reuse.SCMS
	OCME = reuse.OCME
	FSMC = reuse.FSMC
	// SoCEquivalent builds the monolithic comparator of a system.
	SoCEquivalent = reuse.SoCEquivalent
	// CollocationCount is the §5.3 system-count formula.
	CollocationCount = reuse.CollocationCount
)

// Monte Carlo uncertainty analysis (see internal/montecarlo).
type (
	// MonteCarloSpace describes parameter perturbations.
	MonteCarloSpace = montecarlo.Space
	// MonteCarloScenario is one sampled model configuration.
	MonteCarloScenario = montecarlo.Scenario
	// MonteCarloResult summarizes a sampled metric.
	MonteCarloResult = montecarlo.Result
	// MonteCarloMetric evaluates one scalar under a scenario.
	MonteCarloMetric = montecarlo.Metric
	// Uniform, Triangular, Normal and PointDist are sampling
	// distributions for MonteCarloSpace fields.
	Uniform    = montecarlo.Uniform
	Triangular = montecarlo.Triangular
	Normal     = montecarlo.Normal
	PointDist  = montecarlo.Point
)

// Monte Carlo entry points.
var (
	// MonteCarloRun draws scenarios and evaluates a metric.
	MonteCarloRun = montecarlo.Run
	// DefaultMonteCarloSpace puts a ±rel band on every uncertain
	// parameter.
	DefaultMonteCarloSpace = montecarlo.DefaultSpace
)

// D2DFraction returns the paper's flat-fraction D2D model (e.g. 0.10
// for the 10% assumption of §4.1).
func D2DFraction(f float64) D2DOverhead { return dtod.Fraction{F: f} }

// D2DNone returns the zero-overhead model used by monolithic SoCs.
func D2DNone() D2DOverhead { return dtod.None{} }

// Figure 1 D2D interface presets.
var (
	MCMSerDes          = dtod.MCMSerDes
	InFOFanout         = dtod.InFOFanout
	InterposerParallel = dtod.InterposerParallel
)

// Actuary is the legacy single-shot evaluator handle. Every method is
// a thin wrapper over a one-member Session batch.
//
// Deprecated: use NewSession and Session.Evaluate, which add
// batching, concurrency, context cancellation, structured errors and
// a shared KGD cache. Actuary remains for source compatibility.
type Actuary struct {
	s *Session
}

// New builds an Actuary with the built-in technology database and the
// calibrated default packaging parameters.
//
// Deprecated: use NewSession.
func New() (*Actuary, error) {
	return NewWithConfig(tech.Default(), packaging.DefaultParams())
}

// NewWithConfig builds an Actuary from a custom database and
// parameters.
//
// Deprecated: use NewSession with WithTech and WithPackaging.
func NewWithConfig(db *TechDatabase, params PackagingParams) (*Actuary, error) {
	s, err := NewSession(WithTech(db), WithPackaging(params))
	if err != nil {
		return nil, err
	}
	return &Actuary{s: s}, nil
}

// Session returns the batch session backing this handle, for
// incremental migration.
func (a *Actuary) Session() *Session { return a.s }

// Tech returns the technology database in use.
func (a *Actuary) Tech() *TechDatabase { return a.s.Tech() }

// Packaging returns the packaging parameters in use.
func (a *Actuary) Packaging() PackagingParams { return a.s.Packaging() }

// one runs a single-request batch and returns its result.
func (a *Actuary) one(req Request) Result {
	return a.s.Evaluate(context.Background(), []Request{req})[0]
}

// RE computes the recurring cost of one unit of the system (§3.2).
//
// Deprecated: use Session.Evaluate with QuestionRE.
func (a *Actuary) RE(s System) (REBreakdown, error) {
	r := a.one(Request{Question: QuestionRE, System: s})
	if r.Err != nil {
		return REBreakdown{}, r.Err
	}
	return *r.RE, nil
}

// Wafers computes the wafer starts each node must supply to ship the
// given quantity of the system, net of die and packaging yield.
//
// Deprecated: use Session.Evaluate with QuestionWafers.
func (a *Actuary) Wafers(s System, quantity float64) (WaferDemand, error) {
	// The batch API substitutes System.Quantity for a zero Quantity;
	// this legacy method always rejected non-positive quantities, so
	// guard here to keep that contract.
	if quantity <= 0 {
		return WaferDemand{}, fmt.Errorf("cost: quantity %v must be positive", quantity)
	}
	r := a.one(Request{Question: QuestionWafers, System: s, Quantity: quantity})
	if r.Err != nil {
		return WaferDemand{}, r.Err
	}
	return *r.Wafers, nil
}

// Total computes RE plus amortized NRE per unit for a standalone
// system (a one-member portfolio).
//
// Deprecated: use Session.Evaluate with QuestionTotalCost.
func (a *Actuary) Total(s System, policy AmortizationPolicy) (TotalCost, error) {
	r := a.one(Request{Question: QuestionTotalCost, System: s, Policy: policy})
	if r.Err != nil {
		return TotalCost{}, r.Err
	}
	return *r.TotalCost, nil
}

// Portfolio evaluates a family of systems that share module, chip and
// package designs (§3.3), keyed by system name.
//
// Deprecated: use Session.Portfolio.
func (a *Actuary) Portfolio(systems []System, policy AmortizationPolicy) (map[string]TotalCost, error) {
	return a.s.Portfolio(systems, policy)
}

// CrossoverQuantity returns the production quantity at which the
// challenger's total per-unit cost drops to the incumbent's (§4.2's
// "pay back" point).
//
// Deprecated: use Session.Evaluate with QuestionCrossoverQuantity.
func (a *Actuary) CrossoverQuantity(incumbent, challenger System) (float64, error) {
	r := a.one(Request{Question: QuestionCrossoverQuantity,
		Incumbent: incumbent, Challenger: challenger})
	if r.Err != nil {
		return 0, r.Err
	}
	return r.Quantity, nil
}

// OptimalChipletCount sweeps partition counts 1..maxK and returns the
// feasible points and the index of the cheapest (§6's granularity
// guidance).
//
// Deprecated: use Session.Evaluate with QuestionOptimalChipletCount.
func (a *Actuary) OptimalChipletCount(node string, moduleAreaMM2 float64, maxK int,
	scheme Scheme, d2d D2DOverhead, quantity float64) ([]explore.PartitionPoint, int, error) {
	r := a.one(Request{Question: QuestionOptimalChipletCount, Node: node,
		ModuleAreaMM2: moduleAreaMM2, MaxK: maxK, Scheme: scheme, D2D: d2d, Quantity: quantity})
	if r.Err != nil {
		return nil, 0, r.Err
	}
	return r.Points, r.Best, nil
}

// AreaCrossover finds the module area where a k-chiplet partition's
// RE cost drops below the monolithic SoC's (§4.1's "turning point").
//
// Deprecated: use Session.Evaluate with QuestionAreaCrossover.
func (a *Actuary) AreaCrossover(node string, k int, scheme Scheme,
	d2d D2DOverhead, loMM2, hiMM2 float64) (float64, error) {
	r := a.one(Request{Question: QuestionAreaCrossover, Node: node, K: k,
		Scheme: scheme, D2D: d2d, LoMM2: loMM2, HiMM2: hiMM2})
	if r.Err != nil {
		return 0, r.Err
	}
	return r.AreaMM2, nil
}

// MarginalUtility returns the relative RE saving of moving from k to
// k+1 chiplets.
func (a *Actuary) MarginalUtility(node string, moduleAreaMM2 float64, k int,
	scheme Scheme, d2d D2DOverhead) (float64, error) {
	return a.s.ev.MarginalUtility(node, moduleAreaMM2, k, scheme, d2d)
}

// Evaluator exposes the underlying exploration evaluator for advanced
// use (sensitivity studies, custom sweeps).
func (a *Actuary) Evaluator() *explore.Evaluator { return a.s.Evaluator() }
