package actuary_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"chipletactuary"
)

// randomSearchGrid builds a modest random grid whose axes exercise
// every strategy: several categorical values, a long area axis for
// refinement windows, and a count axis with both feasible and
// reticle-pruned corners.
func randomSearchGrid(rng *rand.Rand, name string) *actuary.SweepGrid {
	nodePool := []string{"5nm", "7nm", "12nm", "28nm"}
	schemePool := []actuary.Scheme{actuary.MCM, actuary.TwoPointFiveD, actuary.InFO}
	pick := func(n int) int { return 1 + rng.Intn(n) }
	grid := &actuary.SweepGrid{
		Name:       name,
		Nodes:      append([]string(nil), nodePool[:pick(len(nodePool))]...),
		Schemes:    append([]actuary.Scheme(nil), schemePool[:pick(len(schemePool))]...),
		Quantities: []float64{1e5, 1e6}[:pick(2)],
		D2D:        actuary.D2DFraction(0.10),
	}
	areas := 4 + rng.Intn(12)
	for i := 0; i < areas; i++ {
		grid.AreasMM2 = append(grid.AreasMM2, 150+float64(i)*60)
	}
	for k := 1; k <= pick(6); k++ {
		grid.Counts = append(grid.Counts, k)
	}
	return grid
}

// TestSearchBestPruningOnlyIsExact is the exactness property: with no
// refinement and no halving, lower-bound pruning only skips candidates
// that provably cannot enter the top-K, so the search-best Top must be
// byte-identical to the exhaustive sweep-best Top — across random
// grids and shard counts — while the stats prove candidates were
// actually skipped somewhere along the way.
func TestSearchBestPruningOnlyIsExact(t *testing.T) {
	s, err := actuary.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(41))
	totalPruned := 0
	for trial := 0; trial < 6; trial++ {
		grid := randomSearchGrid(rng, fmt.Sprintf("px%d", trial))
		for n := 1; n <= 3; n++ {
			shardIndex, shardCount := 0, 0
			if n > 1 {
				shardIndex, shardCount = rng.Intn(n), n
			}
			sweepReq := actuary.Request{Question: actuary.QuestionSweepBest,
				Grid: grid, TopK: 3, ShardIndex: shardIndex, ShardCount: shardCount}
			searchReq := actuary.Request{Question: actuary.QuestionSearchBest,
				Grid: grid, TopK: 3, ShardIndex: shardIndex, ShardCount: shardCount}
			res := s.Evaluate(ctx, []actuary.Request{sweepReq, searchReq})
			if res[0].Err != nil || res[1].Err != nil {
				t.Fatalf("trial %d n=%d: %v / %v", trial, n, res[0].Err, res[1].Err)
			}
			want, got := res[0].SweepBest, res[1].SearchBest
			if mustJSON(t, got.Top) != mustJSON(t, want.Top) {
				t.Fatalf("trial %d n=%d: pruning-only search diverged from exhaustive sweep:\n got %s\nwant %s",
					trial, n, mustJSON(t, got.Top), mustJSON(t, want.Top))
			}
			st := got.Stats
			if st.GridSize != grid.Size() {
				t.Errorf("trial %d: stats grid size %d, want %d", trial, st.GridSize, grid.Size())
			}
			if st.Evaluated+st.BoundPruned+st.Pruned+st.Deduped != want.Summary.Count+want.Infeasible+want.Pruned+want.Deduped {
				t.Errorf("trial %d n=%d: search accounting %+v does not cover the sweep's %d candidates",
					trial, n, st, want.Summary.Count+want.Infeasible+want.Pruned+want.Deduped)
			}
			totalPruned += st.BoundPruned
		}
	}
	if totalPruned == 0 {
		t.Error("lower-bound pruning never skipped a candidate across any trial")
	}
}

// TestSearchBestStrategiesWithinTolerance: refinement and halving are
// heuristics, but on the cost model's smooth landscapes their best
// point must come within the configured tolerance of the exhaustive
// optimum — while evaluating strictly fewer candidates.
func TestSearchBestStrategiesWithinTolerance(t *testing.T) {
	s, err := actuary.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	grid := &actuary.SweepGrid{
		Name:       "tol",
		Nodes:      []string{"5nm", "7nm"},
		Schemes:    []actuary.Scheme{actuary.MCM, actuary.TwoPointFiveD},
		Quantities: []float64{1e6},
		D2D:        actuary.D2DFraction(0.10),
	}
	for i := 0; i < 25; i++ {
		grid.AreasMM2 = append(grid.AreasMM2, 200+float64(i)*25)
	}
	for k := 1; k <= 8; k++ {
		grid.Counts = append(grid.Counts, k)
	}
	ref := s.Evaluate(ctx, []actuary.Request{{Question: actuary.QuestionSweepBest, Grid: grid, TopK: 1}})[0]
	if ref.Err != nil {
		t.Fatal(ref.Err)
	}
	exact := ref.SweepBest.Top[0].Total.Total()

	specs := map[string]*actuary.SearchSpec{
		"refine":         {Tolerance: 0.05, Refine: &actuary.SearchRefineSpec{Factor: 4, Knees: 2}},
		"halving":        {Tolerance: 0.05, Halving: &actuary.SearchHalvingSpec{Slabs: 8, Sample: 48}},
		"halving+refine": {Tolerance: 0.05, Bound: true, Halving: &actuary.SearchHalvingSpec{Slabs: 8, Sample: 32}, Refine: &actuary.SearchRefineSpec{Factor: 4}},
	}
	for name, spec := range specs {
		res := s.Evaluate(ctx, []actuary.Request{{Question: actuary.QuestionSearchBest,
			Grid: grid, TopK: 1, Search: spec}})[0]
		if res.Err != nil {
			t.Fatalf("%s: %v", name, res.Err)
		}
		b := res.SearchBest
		if len(b.Top) == 0 {
			t.Fatalf("%s: empty answer", name)
		}
		got := b.Top[0].Total.Total()
		if got > exact*(1+spec.Tolerance) {
			t.Errorf("%s: best %v exceeds exhaustive best %v beyond tolerance %v",
				name, got, exact, spec.Tolerance)
		}
		if b.Stats.Evaluated >= grid.Size() {
			t.Errorf("%s: evaluated %d of %d — no savings", name, b.Stats.Evaluated, grid.Size())
		}
		if b.Stats.Stages < 2 {
			t.Errorf("%s: only %d stages", name, b.Stats.Stages)
		}
	}
}

// TestSearchCheckpointResumeProperty is the kill-and-resume property:
// for every strategy, a search resumed from any mid-run checkpoint —
// after a trip through the wire form, as a real resume takes — ends
// with a SearchBest (answer AND stats) byte-identical to the
// uninterrupted run's.
func TestSearchCheckpointResumeProperty(t *testing.T) {
	s, err := actuary.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(43))
	specs := []*actuary.SearchSpec{
		nil, // pruning only
		{Refine: &actuary.SearchRefineSpec{Factor: 4, Knees: 1}, Bound: true},
		{Halving: &actuary.SearchHalvingSpec{Slabs: 6, Sample: 8}},
		{Halving: &actuary.SearchHalvingSpec{Slabs: 4, Sample: 6}, Refine: &actuary.SearchRefineSpec{Factor: 4}, Bound: true, Budget: 150},
	}
	for trial, spec := range specs {
		grid := randomSearchGrid(rng, fmt.Sprintf("cpx%d", trial))
		req := actuary.Request{Question: actuary.QuestionSearchBest, Grid: grid, TopK: 3, Search: spec}

		want := s.Evaluate(ctx, []actuary.Request{req})[0]
		if want.Err != nil {
			t.Fatalf("trial %d: reference failed: %v", trial, want.Err)
		}

		var saved []*actuary.SearchCheckpoint
		got, err := s.SearchBestCheckpointed(ctx, req, nil, 2,
			func(cp *actuary.SearchCheckpoint) error {
				data, err := json.Marshal(cp)
				if err != nil {
					return err
				}
				back := new(actuary.SearchCheckpoint)
				if err := json.Unmarshal(data, back); err != nil {
					return err
				}
				saved = append(saved, back)
				return nil
			})
		if err != nil {
			t.Fatalf("trial %d: checkpointed walk failed: %v", trial, err)
		}
		if mustJSON(t, got) != mustJSON(t, want.SearchBest) {
			t.Fatalf("trial %d: fresh checkpointed walk diverged from Evaluate:\n got %s\nwant %s",
				trial, mustJSON(t, got), mustJSON(t, want.SearchBest))
		}
		if len(saved) == 0 {
			t.Fatalf("trial %d: walk emitted no checkpoints", trial)
		}

		picks := map[int]bool{0: true, len(saved) - 1: true, rng.Intn(len(saved)): true}
		for i := range picks {
			resumed, err := s.SearchBestCheckpointed(ctx, req, saved[i], 3, nil)
			if err != nil {
				t.Fatalf("trial %d: resume from checkpoint %d: %v", trial, i, err)
			}
			if mustJSON(t, resumed) != mustJSON(t, want.SearchBest) {
				t.Fatalf("trial %d: resume from checkpoint %d diverged:\n got %s\nwant %s",
					trial, i, mustJSON(t, resumed), mustJSON(t, want.SearchBest))
			}
		}
	}
}

// TestSearchResumeEvaluatesNothingTwice pins the no-double-work half
// of the resume contract with an independent witness: the staged
// walk's evaluations flow through Session.Evaluate as total-cost
// requests, so a fresh session that only runs the resumed half must
// record exactly (full evaluations - evaluations before the cut) —
// not one more.
func TestSearchResumeEvaluatesNothingTwice(t *testing.T) {
	ctx := context.Background()
	grid := &actuary.SweepGrid{
		Name:       "twice",
		Nodes:      []string{"5nm", "7nm"},
		Schemes:    []actuary.Scheme{actuary.MCM},
		Quantities: []float64{1e6},
		AreasMM2:   []float64{200, 260, 320, 380, 440, 500, 560, 620},
		Counts:     []int{1, 2, 3, 4, 5, 6},
		D2D:        actuary.D2DFraction(0.10),
	}
	req := actuary.Request{Question: actuary.QuestionSearchBest, Grid: grid, TopK: 2,
		Search: &actuary.SearchSpec{Halving: &actuary.SearchHalvingSpec{Slabs: 4, Sample: 8},
			Refine: &actuary.SearchRefineSpec{Factor: 4}, Bound: true}}

	full, err := actuary.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	var saved []*actuary.SearchCheckpoint
	want, err := full.SearchBestCheckpointed(ctx, req, nil, 3,
		func(cp *actuary.SearchCheckpoint) error {
			data, err := json.Marshal(cp)
			if err != nil {
				return err
			}
			back := new(actuary.SearchCheckpoint)
			if err := json.Unmarshal(data, back); err != nil {
				return err
			}
			saved = append(saved, back)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(saved) < 3 {
		t.Fatalf("only %d checkpoints", len(saved))
	}
	cut := saved[len(saved)/2]
	evaluatedAtCut := cut.Totals.Generated + cut.Cursor.Stats.Generated

	fresh, err := actuary.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := fresh.SearchBestCheckpointed(ctx, req, cut, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mustJSON(t, resumed) != mustJSON(t, want) {
		t.Fatal("resumed answer diverged")
	}
	var count int64
	for _, q := range fresh.Metrics().PerQuestion {
		if q.Question == actuary.QuestionTotalCost {
			count = q.Count
		}
	}
	if wantCount := int64(want.Stats.Evaluated - evaluatedAtCut); count != wantCount {
		t.Errorf("resumed session evaluated %d candidates, want exactly %d (full %d - cut %d)",
			count, wantCount, want.Stats.Evaluated, evaluatedAtCut)
	}
}

// TestSearchCheckpointRejects: the fingerprint and structural guards.
func TestSearchCheckpointRejects(t *testing.T) {
	s, err := actuary.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	grid := &actuary.SweepGrid{Name: "rej", Nodes: []string{"7nm"},
		Schemes: []actuary.Scheme{actuary.MCM}, Quantities: []float64{1e6},
		AreasMM2: []float64{200, 300, 400}, Counts: []int{1, 2, 3},
		D2D: actuary.D2DFraction(0.10)}
	req := actuary.Request{Question: actuary.QuestionSearchBest, Grid: grid, TopK: 1,
		Search: &actuary.SearchSpec{Refine: &actuary.SearchRefineSpec{Factor: 2}}}
	var cp *actuary.SearchCheckpoint
	if _, err := s.SearchBestCheckpointed(ctx, req, nil, 1,
		func(c *actuary.SearchCheckpoint) error { cp = c; return nil }); err != nil {
		t.Fatal(err)
	}
	if cp == nil {
		t.Fatal("no checkpoint captured")
	}

	other := req
	other.TopK = 5
	if _, err := s.SearchBestCheckpointed(ctx, other, cp, 1, nil); !errors.Is(err, actuary.ErrCheckpointMismatch) {
		t.Errorf("checkpoint for different top-k accepted: %v", err)
	}
	headless := *cp
	headless.Planner = nil
	if _, err := s.SearchBestCheckpointed(ctx, req, &headless, 1, nil); !errors.Is(err, actuary.ErrCheckpointMismatch) {
		t.Errorf("plannerless checkpoint accepted: %v", err)
	}
	if _, err := s.SweepBestCheckpointed(ctx, req, nil, 1, nil); err == nil {
		t.Error("SweepBestCheckpointed accepted a search-best request")
	}
}

// TestSearchBestWireRoundTrip: the request's search block and the
// result's search_best payload survive the wire unchanged.
func TestSearchBestWireRoundTrip(t *testing.T) {
	grid := &actuary.SweepGrid{Name: "wire", Nodes: []string{"7nm"},
		Schemes: []actuary.Scheme{actuary.MCM}, Quantities: []float64{1e6},
		AreasMM2: []float64{200, 300}, Counts: []int{1, 2},
		D2D: actuary.D2DFraction(0.10)}
	req := actuary.Request{ID: "w", Question: actuary.QuestionSearchBest, Grid: grid, TopK: 2,
		Search: &actuary.SearchSpec{Budget: 10, Bound: true, Tolerance: 0.01,
			Refine:  &actuary.SearchRefineSpec{Factor: 4, Knees: 2},
			Halving: &actuary.SearchHalvingSpec{Slabs: 4, Sample: 8}}}
	data := mustJSON(t, req)
	back := new(actuary.Request)
	if err := json.Unmarshal([]byte(data), back); err != nil {
		t.Fatal(err)
	}
	if mustJSON(t, *back) != data {
		t.Errorf("request did not round-trip:\n got %s\nwant %s", mustJSON(t, *back), data)
	}

	s, err := actuary.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	res := s.Evaluate(context.Background(), []actuary.Request{
		{ID: "w", Question: actuary.QuestionSearchBest, Grid: grid, TopK: 2}})[0]
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	rdata := mustJSON(t, res)
	rback := new(actuary.Result)
	if err := json.Unmarshal([]byte(rdata), rback); err != nil {
		t.Fatal(err)
	}
	if mustJSON(t, *rback) != rdata {
		t.Errorf("result did not round-trip:\n got %s\nwant %s", mustJSON(t, *rback), rdata)
	}
	if rback.SearchBest == nil || len(rback.SearchBest.Top) == 0 {
		t.Error("search_best payload lost on the wire")
	}
}

// TestScenarioSearchBlock: a scenario file's sweeps compile the search
// question with the spec stamped onto the emitted request.
func TestScenarioSearchBlock(t *testing.T) {
	cfg := actuary.ScenarioConfig{
		Name:      "sc",
		Questions: []string{"search-best"},
		Sweeps: []actuary.SweepConfig{{
			Name: "g", Node: "7nm", Scheme: "MCM", Quantity: 1e6,
			AreasMM2: []float64{200, 300, 400}, Counts: []int{1, 2, 3}, TopK: 2,
			Search: &actuary.SearchSpec{Bound: true, Refine: &actuary.SearchRefineSpec{Factor: 2}},
		}},
	}
	reqs, err := cfg.Requests()
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 1 || reqs[0].Question != actuary.QuestionSearchBest {
		t.Fatalf("compiled to %+v", reqs)
	}
	if reqs[0].Search == nil || reqs[0].Search.Refine == nil || reqs[0].Search.Refine.Factor != 2 {
		t.Errorf("search spec not stamped: %+v", reqs[0].Search)
	}

	bad := cfg
	bad.Sweeps = append([]actuary.SweepConfig(nil), cfg.Sweeps...)
	bad.Sweeps[0].Search = &actuary.SearchSpec{Refine: &actuary.SearchRefineSpec{Factor: 1}}
	if _, err := bad.Requests(); err == nil {
		t.Error("invalid search spec should fail at compile time")
	}
}

// TestSearchBestInfeasibleGrid: an unsharded search of a grid with no
// feasible point reports infeasibility with the first failure chained,
// exactly like the exhaustive sweep.
func TestSearchBestInfeasibleGrid(t *testing.T) {
	s, err := actuary.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	grid := &actuary.SweepGrid{Name: "inf", Nodes: []string{"7nm"},
		Schemes: []actuary.Scheme{actuary.MCM}, Quantities: []float64{1e6},
		AreasMM2: []float64{4000}, Counts: []int{1}, // far past the reticle
		D2D: actuary.D2DFraction(0.10)}
	res := s.Evaluate(context.Background(), []actuary.Request{
		{Question: actuary.QuestionSearchBest, Grid: grid}})[0]
	if res.Err == nil {
		t.Fatal("infeasible grid answered")
	}
	var ae *actuary.Error
	if !errors.As(res.Err, &ae) || ae.Code != actuary.ErrInfeasible {
		t.Errorf("want ErrInfeasible, got %v", res.Err)
	}
}
