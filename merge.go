package actuary

import (
	"fmt"

	"chipletactuary/internal/explore"
	"chipletactuary/internal/sweep"
)

// Shard merging: a QuestionSweepBest request carrying a shard spec
// answers one stripe of its grid; the SweepBestMerger folds those
// partial answers back into the whole-grid answer. Top-K and the
// Pareto front merge exactly (the global top-K is contained in the
// union of per-shard top-Ks, the global front in the union of shard
// fronts, and the ID tie-break makes both independent of shard count
// and arrival order); Summary counts, extremes and their labels merge
// exactly, while Sum/Mean may differ from a single-process run by
// floating-point reassociation error. Pruning statistics sum exactly
// because every grid candidate belongs to exactly one shard.

// newSweepTopK and newSweepPareto are the one definition of the
// sweep-best ranking — total cost per unit with ID tie-breaking, and
// the RE-vs-amortized-NRE front — shared by the per-shard evaluation
// (Session.sweepBest) and the merge layer. A single definition is what
// makes "merged shards equal the unsharded answer" robust: two copies
// could drift and silently re-rank the union under a different metric.
func newSweepTopK(k int) *sweep.TopK[SweepPoint] {
	return sweep.NewTopK(k, func(p SweepPoint) float64 { return p.Total.Total() }).
		TieBreak(func(p SweepPoint) string { return p.ID })
}

func newSweepPareto() *sweep.Pareto[SweepPoint] {
	return sweep.NewPareto(func(p SweepPoint) (float64, float64) {
		return p.Total.RE.Total(), p.Total.NRE.Total()
	}).TieBreak(func(p SweepPoint) string { return p.ID })
}

// ShardID labels shard index of count of a request ID — the one format
// both the scenario compiler and the distribute coordinator stamp, so
// shard requests correlate across logs, metrics and results whichever
// path dispatched them.
func ShardID(id string, index, count int) string {
	return fmt.Sprintf("%s#%d.%d", id, index, count)
}

// SweepBestMerger combines the SweepBest answers of a sweep's shards
// into one whole-grid answer, online — Add as each shard drains, in
// any order.
type SweepBestMerger struct {
	top                         *sweep.TopK[SweepPoint]
	front                       *sweep.Pareto[SweepPoint]
	summary                     SweepSummary
	pruned, deduped, infeasible int
	firstFailure                error
	firstFailureCand            int
}

// NewSweepBestMerger builds a merger retaining the topK cheapest
// points (topK < 1 is raised to 1, matching QuestionSweepBest). Use
// the same TopK bound as the shard requests: a shard retains only its
// own topK points, so a larger merge bound could not be filled
// faithfully.
func NewSweepBestMerger(topK int) *SweepBestMerger {
	return &SweepBestMerger{top: newSweepTopK(topK), front: newSweepPareto()}
}

// Add folds one shard's answer into the merge. A nil or empty answer
// (a shard that owned no feasible candidate) contributes only its
// statistics. Shard failures carry their grid candidate position, so
// whatever order shards are added, the merged FirstFailure is the
// globally first failing point — exactly the one an unsharded walk
// reports.
func (m *SweepBestMerger) Add(b *SweepBest) {
	if b == nil {
		return
	}
	for _, p := range b.Top {
		m.top.Observe(p)
	}
	for _, p := range b.Pareto {
		m.front.Observe(p)
	}
	m.summary.Merge(b.Summary)
	m.pruned += b.Pruned
	m.deduped += b.Deduped
	m.infeasible += b.Infeasible
	if b.FirstFailure != nil &&
		(m.firstFailure == nil || b.FirstFailureCandidate < m.firstFailureCand) {
		m.firstFailure = b.FirstFailure
		m.firstFailureCand = b.FirstFailureCandidate
	}
}

// Merged returns the combined answer of everything added so far. The
// merger remains usable; the returned value does not alias its state.
func (m *SweepBestMerger) Merged() *SweepBest {
	return &SweepBest{
		Top:                   m.top.Sorted(),
		Pareto:                m.front.Front(),
		Summary:               m.summary,
		Pruned:                m.pruned,
		Deduped:               m.deduped,
		Infeasible:            m.infeasible,
		FirstFailure:          m.firstFailure,
		FirstFailureCandidate: m.firstFailureCand,
	}
}

// Result returns the merged answer, or — when no shard contributed a
// feasible point — the same classified ErrInfeasible error an
// unsharded QuestionSweepBest would have produced for the grid, with
// the first per-point failure kept in the chain so the error taxonomy
// survives (a typo'd node still classifies ErrUnknownNode).
func (m *SweepBestMerger) Result(gridName string) (*SweepBest, error) {
	if m.summary.Count == 0 {
		err := fmt.Errorf("actuary: %w: no feasible point in sweep grid %q (%d pruned, %d infeasible)",
			explore.ErrInfeasible, gridName, m.pruned, m.infeasible)
		if m.firstFailure != nil {
			err = fmt.Errorf("%w; first failure: %w", err, m.firstFailure)
		}
		code := classify(err)
		// A failure that crossed a process boundary carries its code
		// structurally instead of a Go error chain; let it outrank the
		// infeasibility classification exactly as its live chain would
		// have (classify checks canceled and unknown-node first).
		if ae, ok := AsError(m.firstFailure); ok &&
			(ae.Code == ErrCanceled || ae.Code == ErrUnknownNode) {
			code = ae.Code
		}
		return nil, &Error{Code: code, Index: -1, ID: gridName,
			Question: QuestionSweepBest, Err: err}
	}
	return m.Merged(), nil
}

// FailureCause returns the underlying cause of a structured *Error,
// or err unchanged. Shard failures that crossed a process boundary
// arrive wrapped in the structured wire form while in-process ones
// are raw chains; rendering the cause gives identical text either
// way, which is what keeps distributed CLI output byte-identical to
// the single-process run.
func FailureCause(err error) error {
	if ae, ok := AsError(err); ok && ae.Err != nil {
		return ae.Err
	}
	return err
}
