// Quickstart: should I build my 800 mm² 5nm system as a monolithic
// SoC or as two chiplets on an organic substrate?
//
// The whole decision is one Session.Evaluate batch: both total-cost
// evaluations, the pay-back point and the optimal partition count are
// answered together, in input order, over the session's worker pool.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"chipletactuary"
)

func main() {
	s, err := actuary.NewSession()
	if err != nil {
		log.Fatal(err)
	}

	const quantity = 2_000_000
	soc := actuary.Monolithic("big-soc", "5nm", 800, quantity)
	mcm, err := actuary.PartitionEqual("big-mcm", "5nm", 800, 2,
		actuary.MCM, actuary.D2DFraction(0.10), quantity)
	if err != nil {
		log.Fatal(err)
	}

	results := s.Evaluate(context.Background(), []actuary.Request{
		{ID: "soc", Question: actuary.QuestionTotalCost, System: soc},
		{ID: "mcm", Question: actuary.QuestionTotalCost, System: mcm},
		{ID: "payback", Question: actuary.QuestionCrossoverQuantity,
			Incumbent: soc, Challenger: mcm},
		{ID: "optimal-k", Question: actuary.QuestionOptimalChipletCount,
			Node: "5nm", ModuleAreaMM2: 800, MaxK: 6, Scheme: actuary.MCM,
			D2D: actuary.D2DFraction(0.10), Quantity: quantity},
	})
	for _, r := range results {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
	}

	for _, r := range results[:2] {
		tc := r.TotalCost
		fmt.Printf("%-8s RE $%7.2f  + amortized NRE $%7.2f  = $%7.2f per unit\n",
			r.ID, tc.RE.Total(), tc.NRE.Total(), tc.Total())
		fmt.Printf("         raw chips $%.2f | chip defects $%.2f | packaging $%.2f (incl. $%.2f wasted KGDs)\n",
			tc.RE.RawChips, tc.RE.ChipDefects, tc.RE.PackagingTotal(), tc.RE.WastedKGD)
	}

	// Where exactly does the two-chiplet design start paying back?
	fmt.Printf("\nthe 2-chiplet MCM pays back above %.0f units (paper: between 500k and 2M)\n",
		results[2].Quantity)

	// And how many chiplets should it be at this volume?
	best := results[3].Points[results[3].Best]
	fmt.Printf("optimal partition at %d units: %d chiplet(s), $%.2f per unit\n",
		quantity, best.Chiplets, best.Total.Total())
}
