// Quickstart: should I build my 800 mm² 5nm system as a monolithic
// SoC or as two chiplets on an organic substrate?
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"chipletactuary"
)

func main() {
	a, err := actuary.New()
	if err != nil {
		log.Fatal(err)
	}

	const quantity = 2_000_000
	soc := actuary.Monolithic("big-soc", "5nm", 800, quantity)
	mcm, err := actuary.PartitionEqual("big-mcm", "5nm", 800, 2,
		actuary.MCM, actuary.D2DFraction(0.10), quantity)
	if err != nil {
		log.Fatal(err)
	}

	for _, sys := range []actuary.System{soc, mcm} {
		tc, err := a.Total(sys, actuary.PerSystemUnit)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s RE $%7.2f  + amortized NRE $%7.2f  = $%7.2f per unit\n",
			sys.Name, tc.RE.Total(), tc.NRE.Total(), tc.Total())
		fmt.Printf("         raw chips $%.2f | chip defects $%.2f | packaging $%.2f (incl. $%.2f wasted KGDs)\n",
			tc.RE.RawChips, tc.RE.ChipDefects, tc.RE.PackagingTotal(), tc.RE.WastedKGD)
	}

	// Where exactly does the two-chiplet design start paying back?
	q, err := a.CrossoverQuantity(soc, mcm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nthe 2-chiplet MCM pays back above %.0f units (paper: between 500k and 2M)\n", q)

	// And how many chiplets should it be at this volume?
	points, best, err := a.OptimalChipletCount("5nm", 800, 6, actuary.MCM,
		actuary.D2DFraction(0.10), quantity)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal partition at %d units: %d chiplet(s), $%.2f per unit\n",
		quantity, points[best].Chiplets, points[best].Total.Total())
}
