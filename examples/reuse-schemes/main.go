// reuse-schemes walks through the paper's §5: how SCMS, OCME and FSMC
// chiplet-reuse architectures turn NRE amortization into real savings.
//
// Portfolios are inherently cross-system (every member's NRE share
// depends on every other member), so they use Session.Portfolio; the
// per-system monolithic comparators are a Session.Evaluate batch.
//
// Run with: go run ./examples/reuse-schemes
package main

import (
	"context"
	"fmt"
	"log"

	"chipletactuary"
)

func main() {
	s, err := actuary.NewSession()
	if err != nil {
		log.Fatal(err)
	}

	// --- SCMS: one chiplet, three product grades (Figure 8) ---
	fmt.Println("SCMS: one 7nm 200mm² chiplet → 1X/2X/4X systems (500k each)")
	family, err := actuary.SCMS(actuary.SCMSConfig{
		Node: "7nm", ModuleAreaMM2: 200, Counts: []int{1, 2, 4},
		Scheme: actuary.MCM, QuantityPerSystem: 500_000,
		Params: s.Packaging(),
	})
	if err != nil {
		log.Fatal(err)
	}
	costs, err := s.Portfolio(family, actuary.PerSystemUnit)
	if err != nil {
		log.Fatal(err)
	}
	// Each grade's monolithic comparator, evaluated as one batch.
	socReqs := make([]actuary.Request, len(family))
	for i, sys := range family {
		socReqs[i] = actuary.Request{
			ID:       sys.Name,
			Question: actuary.QuestionTotalCost,
			System:   actuary.SoCEquivalent(sys, "7nm"),
		}
	}
	socResults := s.Evaluate(context.Background(), socReqs)
	for i, sys := range family {
		if socResults[i].Err != nil {
			log.Fatal(socResults[i].Err)
		}
		tc := costs[sys.Name]
		socTotal := socResults[i].TotalCost.Total()
		fmt.Printf("  %-8s $%8.2f/unit (monolithic would be $%8.2f — %.0f%% saved)\n",
			sys.Name, tc.Total(), socTotal, (1-tc.Total()/socTotal)*100)
	}

	// --- OCME: a mature-node center die with 7nm extensions (Figure 9) ---
	fmt.Println("\nOCME: heterogeneous center die (14nm) + 7nm extensions")
	hetero, err := actuary.OCME(actuary.OCMEConfig{
		Node: "7nm", CenterNode: "14nm", SocketAreaMM2: 160,
		Scheme: actuary.MCM, QuantityPerSystem: 500_000,
		ReusePackage: true, Params: s.Packaging(),
	})
	if err != nil {
		log.Fatal(err)
	}
	homo, err := actuary.OCME(actuary.OCMEConfig{
		Node: "7nm", SocketAreaMM2: 160,
		Scheme: actuary.MCM, QuantityPerSystem: 500_000,
		ReusePackage: true, Params: s.Packaging(),
	})
	if err != nil {
		log.Fatal(err)
	}
	hetCosts, err := s.Portfolio(hetero, actuary.PerSystemUnit)
	if err != nil {
		log.Fatal(err)
	}
	homoCosts, err := s.Portfolio(homo, actuary.PerSystemUnit)
	if err != nil {
		log.Fatal(err)
	}
	for i := range hetero {
		name := hetero[i].Name
		fmt.Printf("  %-8s all-7nm $%8.2f → 14nm center $%8.2f (%.0f%% saved)\n",
			name, homoCosts[name].Total(), hetCosts[name].Total(),
			(1-hetCosts[name].Total()/homoCosts[name].Total())*100)
	}

	// --- FSMC: six chiplets, one 4-socket package (Figure 10) ---
	fmt.Println("\nFSMC: 6 chiplet types × 4 sockets =",
		int(actuary.CollocationCount(6, 4)), "distinct systems from 6 tapeouts")
	fsmc, err := actuary.FSMC(actuary.FSMCConfig{
		Node: "7nm", ModuleAreaMM2: 150, Types: 6, Sockets: 4,
		Scheme: actuary.MCM, QuantityPerSystem: 500_000, Params: s.Packaging(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fsmcCosts, err := s.Portfolio(fsmc, actuary.PerSystemUnit)
	if err != nil {
		log.Fatal(err)
	}
	var avgTotal, avgNRE float64
	for _, sys := range fsmc {
		avgTotal += fsmcCosts[sys.Name].Total()
		avgNRE += fsmcCosts[sys.Name].NRE.Total()
	}
	avgTotal /= float64(len(fsmc))
	avgNRE /= float64(len(fsmc))
	fmt.Printf("  average $%.2f/unit with amortized NRE of just $%.2f (%.1f%%)\n",
		avgTotal, avgNRE, avgNRE/avgTotal*100)
	fmt.Println("  → with full reuse, the NRE cost is small enough to be ignored (§5.3)")
}
