// reuse-schemes walks through the paper's §5: how SCMS, OCME and FSMC
// chiplet-reuse architectures turn NRE amortization into real savings.
//
// Run with: go run ./examples/reuse-schemes
package main

import (
	"fmt"
	"log"

	"chipletactuary"
)

func main() {
	a, err := actuary.New()
	if err != nil {
		log.Fatal(err)
	}

	// --- SCMS: one chiplet, three product grades (Figure 8) ---
	fmt.Println("SCMS: one 7nm 200mm² chiplet → 1X/2X/4X systems (500k each)")
	family, err := actuary.SCMS(actuary.SCMSConfig{
		Node: "7nm", ModuleAreaMM2: 200, Counts: []int{1, 2, 4},
		Scheme: actuary.MCM, QuantityPerSystem: 500_000,
		Params: a.Packaging(),
	})
	if err != nil {
		log.Fatal(err)
	}
	costs, err := a.Portfolio(family, actuary.PerSystemUnit)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range family {
		tc := costs[s.Name]
		soc := actuary.SoCEquivalent(s, "7nm")
		socTC, err := a.Total(soc, actuary.PerSystemUnit)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s $%8.2f/unit (monolithic would be $%8.2f — %.0f%% saved)\n",
			s.Name, tc.Total(), socTC.Total(), (1-tc.Total()/socTC.Total())*100)
	}

	// --- OCME: a mature-node center die with 7nm extensions (Figure 9) ---
	fmt.Println("\nOCME: heterogeneous center die (14nm) + 7nm extensions")
	hetero, err := actuary.OCME(actuary.OCMEConfig{
		Node: "7nm", CenterNode: "14nm", SocketAreaMM2: 160,
		Scheme: actuary.MCM, QuantityPerSystem: 500_000,
		ReusePackage: true, Params: a.Packaging(),
	})
	if err != nil {
		log.Fatal(err)
	}
	homo, err := actuary.OCME(actuary.OCMEConfig{
		Node: "7nm", SocketAreaMM2: 160,
		Scheme: actuary.MCM, QuantityPerSystem: 500_000,
		ReusePackage: true, Params: a.Packaging(),
	})
	if err != nil {
		log.Fatal(err)
	}
	hetCosts, err := a.Portfolio(hetero, actuary.PerSystemUnit)
	if err != nil {
		log.Fatal(err)
	}
	homoCosts, err := a.Portfolio(homo, actuary.PerSystemUnit)
	if err != nil {
		log.Fatal(err)
	}
	for i := range hetero {
		name := hetero[i].Name
		fmt.Printf("  %-8s all-7nm $%8.2f → 14nm center $%8.2f (%.0f%% saved)\n",
			name, homoCosts[name].Total(), hetCosts[name].Total(),
			(1-hetCosts[name].Total()/homoCosts[name].Total())*100)
	}

	// --- FSMC: six chiplets, one 4-socket package (Figure 10) ---
	fmt.Println("\nFSMC: 6 chiplet types × 4 sockets =",
		int(actuary.CollocationCount(6, 4)), "distinct systems from 6 tapeouts")
	fsmc, err := actuary.FSMC(actuary.FSMCConfig{
		Node: "7nm", ModuleAreaMM2: 150, Types: 6, Sockets: 4,
		Scheme: actuary.MCM, QuantityPerSystem: 500_000, Params: a.Packaging(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fsmcCosts, err := a.Portfolio(fsmc, actuary.PerSystemUnit)
	if err != nil {
		log.Fatal(err)
	}
	var avgTotal, avgNRE float64
	for _, s := range fsmc {
		avgTotal += fsmcCosts[s.Name].Total()
		avgNRE += fsmcCosts[s.Name].NRE.Total()
	}
	avgTotal /= float64(len(fsmc))
	avgNRE /= float64(len(fsmc))
	fmt.Printf("  average $%.2f/unit with amortized NRE of just $%.2f (%.1f%%)\n",
		avgTotal, avgNRE, avgNRE/avgTotal*100)
	fmt.Println("  → with full reuse, the NRE cost is small enough to be ignored (§5.3)")
}
