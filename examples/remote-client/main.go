// Remote client: the same exploration program running against a
// local Session or a remote actuaryd, switched by one flag.
//
// The client.Backend interface is the whole trick — client.Local
// wraps an in-process Session, client.Dial speaks the wire protocol
// to a daemon, and everything below the constructor is identical:
// batch a few questions, then stream a scenario's sweep and reduce it
// online.
//
// Run in-process:     go run ./examples/remote-client
// Against a daemon:   go run ./cmd/actuaryd &
//
//	go run ./examples/remote-client -remote http://localhost:8833
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"chipletactuary"
	"chipletactuary/client"
)

func main() {
	remote := flag.String("remote", "", "actuaryd base URL (empty: evaluate in-process)")
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var backend client.Backend
	if *remote != "" {
		c, err := client.Dial(*remote)
		if err != nil {
			log.Fatal(err)
		}
		if err := c.Ping(ctx); err != nil {
			log.Fatalf("actuaryd at %s is not answering: %v", *remote, err)
		}
		backend = c
		fmt.Printf("evaluating remotely via %s\n\n", *remote)
	} else {
		s, err := actuary.NewSession()
		if err != nil {
			log.Fatal(err)
		}
		backend = client.Local(s)
		fmt.Printf("evaluating in-process\n\n")
	}

	// A small batch: the §4.1 SoC-vs-MCM comparison.
	const quantity = 2_000_000
	soc := actuary.Monolithic("big-soc", "5nm", 800, quantity)
	mcm, err := actuary.PartitionEqual("big-mcm", "5nm", 800, 2,
		actuary.MCM, actuary.D2DFraction(0.10), quantity)
	if err != nil {
		log.Fatal(err)
	}
	results, err := backend.Evaluate(ctx, []actuary.Request{
		{ID: "soc", Question: actuary.QuestionTotalCost, System: soc},
		{ID: "mcm", Question: actuary.QuestionTotalCost, System: mcm},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		fmt.Printf("%-4s $%8.2f/unit (RE $%.2f + NRE $%.2f)\n", r.ID,
			r.TotalCost.Total(), r.TotalCost.RE.Total(), r.TotalCost.NRE.Total())
	}

	// A streamed scenario: the same document a file (or a curl to
	// /v1/stream) would carry, reduced online to its five cheapest
	// points — whether the sweep runs here or in the daemon.
	scenario := actuary.ScenarioConfig{
		Version: 2, Name: "granularity", Questions: []string{"total-cost"},
		Sweeps: []actuary.SweepConfig{{
			Name: "grid", Nodes: []string{"5nm", "7nm"}, Schemes: []string{"MCM", "2.5D"},
			D2DFraction: 0.10, Quantity: quantity,
			AreaRange:  &actuary.AreaRangeConfig{LoMM2: 200, HiMM2: 800, StepMM2: 100},
			CountRange: &actuary.CountRangeConfig{Lo: 1, Hi: 6},
		}},
	}
	ch, err := backend.Stream(ctx, client.StreamRequest{Scenario: scenario})
	if err != nil {
		log.Fatal(err)
	}
	top := actuary.NewCostTopK(5)
	var stats actuary.StreamStats
	seen := actuary.Reduce(ch, top, &stats)

	fmt.Printf("\nstreamed %d sweep points (%d ok, %d failed); top 5:\n", seen, stats.OK, stats.Failed)
	for i, r := range top.Results() {
		fmt.Printf("%d. %-28s $%8.2f/unit\n", i+1, r.ID, r.TotalCost.Total())
	}
}
