// uncertainty asks: how sure can we be of the SoC-vs-chiplet decision
// when the cost inputs are estimates? It puts ±15% bands on defect
// densities, wafer prices, substrate cost and design cost, resamples
// the model 500 times, and reports the distribution of the pay-back
// quantity for the paper's 5nm/800 mm² system.
//
// Each Monte Carlo scenario perturbs the technology database and
// packaging parameters, so the metric builds a fresh Session per
// scenario and asks it the crossover question.
//
// Run with: go run ./examples/uncertainty
package main

import (
	"context"
	"fmt"
	"log"

	"chipletactuary"
)

func main() {
	db := actuary.DefaultTech()
	params := actuary.DefaultPackaging()

	metric := func(sc actuary.MonteCarloScenario) (float64, error) {
		s, err := actuary.NewSession(actuary.WithTech(sc.DB), actuary.WithPackaging(sc.Params))
		if err != nil {
			return 0, err
		}
		soc := actuary.Monolithic("soc", "5nm", 800, 1)
		mcm, err := actuary.PartitionEqual("mcm", "5nm", 800, 2,
			actuary.MCM, actuary.D2DFraction(0.10), 1)
		if err != nil {
			return 0, err
		}
		r := s.Evaluate(context.Background(), []actuary.Request{{
			Question:  actuary.QuestionCrossoverQuantity,
			Incumbent: soc, Challenger: mcm,
		}})[0]
		if r.Err != nil {
			return 0, r.Err
		}
		return r.Quantity, nil
	}

	res, err := actuary.MonteCarloRun(500, 2022, actuary.DefaultMonteCarloSpace(0.15),
		db, params, metric)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Pay-back quantity for the 5nm/800mm² 2-chiplet MCM under ±15% input noise:")
	fmt.Printf("  P10    %8.0f units\n", res.Quantile(0.10))
	fmt.Printf("  median %8.0f units\n", res.Quantile(0.50))
	fmt.Printf("  P90    %8.0f units\n", res.Quantile(0.90))
	fmt.Printf("  mean   %8.0f ± %.0f units\n", res.Mean(), res.Std())
	fmt.Printf("  P(pay-back ≤ 2M units) = %.0f%%   (paper: pays back by 2M)\n",
		res.ProbWithin(0, 2_000_000)*100)
	fmt.Printf("  infeasible scenarios: %d\n", res.Failures)
	fmt.Println("\n→ the paper's §4.2 conclusion is not a knife-edge artifact of the inputs.")
}
