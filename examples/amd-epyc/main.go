// amd-epyc rebuilds the paper's Figure 5 validation: an EPYC-like
// product line (7nm compute chiplets around a 12nm IO die) against a
// hypothetical monolithic 7nm implementation, using the early-life
// defect densities the paper quotes (0.13 / 0.12).
//
// All ten RE evaluations (five core counts × chiplet/monolithic) run
// as one Session.Evaluate batch on a session built over the adjusted
// technology database.
//
// Run with: go run ./examples/amd-epyc
package main

import (
	"context"
	"fmt"
	"log"

	"chipletactuary"
)

func main() {
	// Early-production defect densities: the Zen3 project started
	// when 7nm and 12nm were young (§4.1).
	db := actuary.DefaultTech()
	n7, err := db.Node("7nm")
	if err != nil {
		log.Fatal(err)
	}
	n12, err := db.Node("12nm")
	if err != nil {
		log.Fatal(err)
	}
	db, err = db.Override(n7.WithDefectDensity(0.13))
	if err != nil {
		log.Fatal(err)
	}
	db, err = db.Override(n12.WithDefectDensity(0.12))
	if err != nil {
		log.Fatal(err)
	}
	s, err := actuary.NewSession(actuary.WithTech(db))
	if err != nil {
		log.Fatal(err)
	}

	ccd := actuary.Chiplet{
		Name: "ccd", Node: "7nm",
		Modules: []actuary.Module{{Name: "ccd-cores", AreaMM2: 66.6, Scalable: true}},
		D2D:     actuary.D2DFraction(0.10), // IFOP links ≈10% of the die
	}
	iod := actuary.Chiplet{
		Name: "iod", Node: "12nm",
		Modules: []actuary.Module{{Name: "iod-logic", AreaMM2: 374.4, Scalable: false}},
		D2D:     actuary.D2DFraction(0.10),
	}

	coreCounts := []int{16, 24, 32, 48, 64}
	var reqs []actuary.Request
	for _, cores := range coreCounts {
		nCCD := cores / 8
		chiplet := actuary.System{
			Name:   fmt.Sprintf("epyc-%d", cores),
			Scheme: actuary.MCM,
			Placements: []actuary.Placement{
				{Chiplet: ccd, Count: nCCD},
				{Chiplet: iod, Count: 1},
			},
			Quantity: 1,
		}
		// Monolithic 7nm: CCD logic without D2D + IOD logic scaled to
		// 7nm (IO shrinks poorly: ×0.55).
		monoArea := float64(nCCD)*66.6 + 374.4*0.55 + 374.4*0.10*0.55
		mono := actuary.Monolithic(fmt.Sprintf("mono-%d", cores), "7nm", monoArea, 1)
		reqs = append(reqs,
			actuary.Request{ID: chiplet.Name, Question: actuary.QuestionRE, System: chiplet},
			actuary.Request{ID: mono.Name, Question: actuary.QuestionRE, System: mono})
	}
	results := s.Evaluate(context.Background(), reqs)
	for _, r := range results {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
	}

	fmt.Println("cores  chiplet $   monolithic $   ratio   packaging share")
	for i, cores := range coreCounts {
		chipletRE, monoRE := results[2*i].RE, results[2*i+1].RE
		fmt.Printf("%5d  %9.2f  %13.2f  %6.2f   %.0f%%\n",
			cores, chipletRE.Total(), monoRE.Total(),
			chipletRE.Total()/monoRE.Total(),
			chipletRE.PackagingTotal()/chipletRE.Total()*100)
	}
	fmt.Println("\nAMD's claim reproduced: the chiplet advantage grows with core count,")
	fmt.Println("while packaging overhead (which AMD's own comparison omits) stays ~1/3.")
}
