// partition-sweep answers the architect's question from §6: given a
// module area, node and production volume, how many chiplets should
// the system be split into, and on which packaging technology?
//
// All twelve sweep questions (nine optimal-k points and three area
// turning points) go out as ONE Session.Evaluate batch; the shared
// KGD cache means the overlapping die shapes are costed once.
//
// Run with: go run ./examples/partition-sweep
package main

import (
	"context"
	"fmt"
	"log"

	"chipletactuary"
)

func main() {
	s, err := actuary.NewSession()
	if err != nil {
		log.Fatal(err)
	}
	d2d := actuary.D2DFraction(0.10)
	nodes := []string{"14nm", "7nm", "5nm"}
	volumes := []float64{100_000, 2_000_000, 10_000_000}

	var reqs []actuary.Request
	for _, node := range nodes {
		for _, q := range volumes {
			reqs = append(reqs, actuary.Request{
				ID:       fmt.Sprintf("optimal/%s/%.0f", node, q),
				Question: actuary.QuestionOptimalChipletCount,
				Node:     node, ModuleAreaMM2: 800, MaxK: 8,
				Scheme: actuary.MCM, D2D: d2d, Quantity: q,
			})
		}
	}
	for _, node := range nodes {
		reqs = append(reqs, actuary.Request{
			ID:       "turning/" + node,
			Question: actuary.QuestionAreaCrossover,
			Node:     node, K: 2, Scheme: actuary.MCM, D2D: d2d,
			LoMM2: 100, HiMM2: 900,
		})
	}
	results := s.Evaluate(context.Background(), reqs)
	for _, r := range results {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
	}

	fmt.Println("Optimal chiplet count by node and volume (800 mm² of modules, MCM):")
	fmt.Println("node   volume     best k   $/unit")
	i := 0
	for _, node := range nodes {
		for _, q := range volumes {
			best := results[i].Points[results[i].Best]
			fmt.Printf("%-5s  %9.0f  %6d  %8.2f\n", node, q, best.Chiplets, best.Total.Total())
			i++
		}
	}

	fmt.Println("\nArea turning points (2-chiplet MCM RE beats monolithic SoC RE):")
	for _, node := range nodes {
		fmt.Printf("  %-5s %.0f mm²\n", node, results[i].AreaMM2)
		i++
	}
	fmt.Println("→ the closer to the Moore Limit, the earlier multi-chip pays (§6)")

	fmt.Println("\nMarginal utility of finer partitioning (5nm, 800 mm², MCM):")
	for k := 1; k <= 5; k++ {
		mu, err := s.Evaluator().MarginalUtility("5nm", 800, k, actuary.MCM, d2d)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d → %d chiplets: %+.1f%% RE\n", k, k+1, -mu*100)
	}
	fmt.Println("→ two or three chiplets are usually sufficient (§6)")

	st := s.CacheStats()
	fmt.Printf("\nKGD cache over the batch: %d hits, %d misses (%d die shapes)\n",
		st.Hits, st.Misses, st.Entries)
}
