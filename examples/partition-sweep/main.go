// partition-sweep answers the architect's question from §6: given a
// module area, node and production volume, how many chiplets should
// the system be split into, and on which packaging technology?
//
// Run with: go run ./examples/partition-sweep
package main

import (
	"fmt"
	"log"

	"chipletactuary"
)

func main() {
	a, err := actuary.New()
	if err != nil {
		log.Fatal(err)
	}
	d2d := actuary.D2DFraction(0.10)

	fmt.Println("Optimal chiplet count by node and volume (800 mm² of modules, MCM):")
	fmt.Println("node   volume     best k   $/unit")
	for _, node := range []string{"14nm", "7nm", "5nm"} {
		for _, q := range []float64{100_000, 2_000_000, 10_000_000} {
			points, best, err := a.OptimalChipletCount(node, 800, 8, actuary.MCM, d2d, q)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-5s  %9.0f  %6d  %8.2f\n",
				node, q, points[best].Chiplets, points[best].Total.Total())
		}
	}

	fmt.Println("\nArea turning points (2-chiplet MCM RE beats monolithic SoC RE):")
	for _, node := range []string{"14nm", "7nm", "5nm"} {
		area, err := a.AreaCrossover(node, 2, actuary.MCM, d2d, 100, 900)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-5s %.0f mm²\n", node, area)
	}
	fmt.Println("→ the closer to the Moore Limit, the earlier multi-chip pays (§6)")

	fmt.Println("\nMarginal utility of finer partitioning (5nm, 800 mm², MCM):")
	for k := 1; k <= 5; k++ {
		mu, err := a.MarginalUtility("5nm", 800, k, actuary.MCM, d2d)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d → %d chiplets: %+.1f%% RE\n", k, k+1, -mu*100)
	}
	fmt.Println("→ two or three chiplets are usually sufficient (§6)")
}
