// Distributed sweep: one design-space exploration fanned across two
// actuaryd daemons plus an in-process session, merged back into
// exactly the single-process answer.
//
// The program is self-contained — it launches two daemons on
// kernel-assigned ports in this very process (each an ordinary
// server.New over its own Session, exactly what cmd/actuaryd runs),
// dials them through the typed client, and hands all three backends to
// a distribute.Coordinator. The coordinator splits the grid's
// candidate space into shards, dispatches one per backend, reassigns
// shards if a backend dies mid-sweep, and merges the online aggregates
// as shards drain. The punchline is the determinism guarantee: the
// merged top-K and Pareto front are byte-identical to an unsharded
// local evaluation, which the program verifies before printing.
//
//	go run ./examples/distributed-sweep
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"reflect"

	"chipletactuary"
	"chipletactuary/client"
	"chipletactuary/distribute"
	"chipletactuary/server"
)

// daemon starts an actuaryd-style HTTP server on a kernel-assigned
// port and returns a client dialed to it plus a shutdown func.
func daemon() (client.Backend, func(), error) {
	session, err := actuary.NewSession()
	if err != nil {
		return nil, nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: server.New(session).Handler()}
	go func() { _ = srv.Serve(ln) }()
	c, err := client.Dial("http://" + ln.Addr().String())
	if err != nil {
		return nil, nil, err
	}
	fmt.Printf("daemon listening on http://%s\n", ln.Addr())
	return c, func() { _ = srv.Close() }, nil
}

func main() {
	ctx := context.Background()

	// The §6 granularity question, as a ~1500-point grid.
	areas, err := actuary.SweepAreaRange(100, 850, 25)
	if err != nil {
		log.Fatal(err)
	}
	grid := actuary.SweepGrid{
		Name:       "granularity",
		Nodes:      []string{"5nm", "7nm"},
		Schemes:    []actuary.Scheme{actuary.MCM, actuary.TwoPointFiveD},
		AreasMM2:   areas,
		Counts:     []int{1, 2, 3, 4, 5, 6},
		Quantities: []float64{500_000, 2_000_000},
		D2D:        actuary.D2DFraction(0.10),
	}
	req := actuary.Request{Question: actuary.QuestionSweepBest, Grid: &grid, TopK: 5}

	// Two real daemons (wire protocol over HTTP) plus one in-process
	// session: the Backend interface makes them interchangeable.
	var backends []client.Backend
	for i := 0; i < 2; i++ {
		b, stop, err := daemon()
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
		backends = append(backends, b)
	}
	local, err := actuary.NewSession()
	if err != nil {
		log.Fatal(err)
	}
	backends = append(backends, client.Local(local))

	coord, err := distribute.New(backends, distribute.WithShards(6))
	if err != nil {
		log.Fatal(err)
	}
	merged, err := coord.SweepBest(ctx, req)
	if err != nil {
		log.Fatal(err)
	}

	// The determinism guarantee, checked: an unsharded local run of the
	// same grid must retain exactly the same points.
	res := local.Evaluate(ctx, []actuary.Request{req})[0]
	if res.Err != nil {
		log.Fatal(res.Err)
	}
	if !reflect.DeepEqual(merged.Top, res.SweepBest.Top) ||
		!reflect.DeepEqual(merged.Pareto, res.SweepBest.Pareto) {
		log.Fatal("distributed answer diverged from the single-process answer")
	}

	fmt.Printf("\n%d points explored across %d backends (%d pruned, %d deduped); top %d:\n",
		merged.Summary.Count, len(backends), merged.Pruned, merged.Deduped, len(merged.Top))
	for i, p := range merged.Top {
		fmt.Printf("%d. %-34s %s %-4v k=%d  $%8.2f/unit\n",
			i+1, p.ID, p.Node, p.Scheme, p.K, p.Total.Total())
	}
	fmt.Printf("\nPareto front (RE vs amortized NRE, both minimized):\n")
	for _, p := range merged.Pareto {
		fmt.Printf("   %-34s RE $%8.2f  NRE $%8.2f\n", p.ID, p.Total.RE.Total(), p.Total.NRE.Total())
	}
	fmt.Printf("\ndistributed top-K and Pareto front are byte-identical to the single-process sweep\n")
}
