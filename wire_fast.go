package actuary

import (
	"encoding/json"
	"math"
	"strconv"
	"unicode/utf8"

	"chipletactuary/internal/cost"
	"chipletactuary/internal/nre"
	"chipletactuary/internal/packaging"
)

// NDJSON fast path. A streamed sweep delivers hundreds of thousands of
// total-cost Results per second, and routing each through
// encoding/json's reflective encoder both dominates the marshal cost
// and allocates a fresh buffer per line. AppendResultLine hand-rolls
// the canonical wire form for exactly the hot shape — a successful
// total-cost Result — into a caller-owned buffer, byte-identical to
// what json.Encoder.Encode writes (wire_fast_test.go proves identity
// against encoding/json over the full stream output and adversarial
// values). Everything else — errors, the one-shot question payloads,
// values encoding/json itself rejects — takes the reflective path, so
// the fast path can never change the protocol, only the cost of it.

// AppendResultLine appends one NDJSON line — the canonical JSON of r
// followed by '\n', exactly the bytes json.NewEncoder(w).Encode(r)
// would write — to dst and returns the extended buffer. Callers reuse
// dst across lines to keep the marshal hot path allocation-free. On
// error (a payload encoding/json cannot represent, such as a non-finite
// float) dst is returned unchanged alongside the error.
func AppendResultLine(dst []byte, r Result) ([]byte, error) {
	if out, ok := appendResultFast(dst, r); ok {
		return append(out, '\n'), nil
	}
	// Anything written by the abandoned fast attempt sits past
	// len(dst) and is overwritten here.
	data, err := json.Marshal(r)
	if err != nil {
		return dst, err
	}
	dst = append(dst, data...)
	return append(dst, '\n'), nil
}

// appendResultFast encodes the hot Result shape, reporting ok=false —
// possibly after a partial write past len(dst), which the caller
// discards — when r needs the general encoder for bit-exact output.
func appendResultFast(dst []byte, r Result) ([]byte, bool) {
	if r.Err != nil || r.TotalCost == nil || r.RE != nil || r.Wafers != nil ||
		r.SweepBest != nil || r.SearchBest != nil ||
		len(r.Points) != 0 || r.Best != 0 || r.Quantity != 0 || r.AreaMM2 != 0 {
		return dst, false
	}
	question, ok := questionLabel(r.Question)
	if !ok {
		return dst, false
	}
	dst = append(dst, `{"index":`...)
	dst = strconv.AppendInt(dst, int64(r.Index), 10)
	if r.ID != "" {
		dst = append(dst, `,"id":`...)
		dst = appendJSONString(dst, r.ID)
	}
	dst = append(dst, `,"question":`...)
	dst = appendJSONString(dst, question)
	dst = append(dst, `,"total_cost":{"re":`...)
	if dst, ok = appendREJSON(dst, &r.TotalCost.RE); !ok {
		return dst, false
	}
	dst = append(dst, `,"nre":`...)
	if dst, ok = appendNREJSON(dst, &r.TotalCost.NRE); !ok {
		return dst, false
	}
	return append(dst, '}', '}'), true
}

// appendREJSON encodes a cost.Breakdown in its wire order.
func appendREJSON(dst []byte, b *cost.Breakdown) ([]byte, bool) {
	var ok bool
	dst = append(dst, `{"raw_chips":`...)
	if dst, ok = appendJSONFloat(dst, b.RawChips); !ok {
		return dst, false
	}
	dst = append(dst, `,"chip_defects":`...)
	if dst, ok = appendJSONFloat(dst, b.ChipDefects); !ok {
		return dst, false
	}
	dst = append(dst, `,"raw_package":`...)
	if dst, ok = appendJSONFloat(dst, b.RawPackage); !ok {
		return dst, false
	}
	dst = append(dst, `,"package_defects":`...)
	if dst, ok = appendJSONFloat(dst, b.PackageDefects); !ok {
		return dst, false
	}
	dst = append(dst, `,"wasted_kgd":`...)
	if dst, ok = appendJSONFloat(dst, b.WastedKGD); !ok {
		return dst, false
	}
	if len(b.Dies) > 0 {
		dst = append(dst, `,"dies":[`...)
		for i := range b.Dies {
			if i > 0 {
				dst = append(dst, ',')
			}
			if dst, ok = appendDieJSON(dst, &b.Dies[i]); !ok {
				return dst, false
			}
		}
		dst = append(dst, ']')
	}
	dst = append(dst, `,"packaging":`...)
	if dst, ok = appendPackagingJSON(dst, &b.Packaging); !ok {
		return dst, false
	}
	return append(dst, '}'), true
}

// appendDieJSON encodes a cost.DieCost in its wire order.
func appendDieJSON(dst []byte, d *cost.DieCost) ([]byte, bool) {
	var ok bool
	dst = append(dst, `{"name":`...)
	dst = appendJSONString(dst, d.Name)
	dst = append(dst, `,"node":`...)
	dst = appendJSONString(dst, d.Node)
	dst = append(dst, `,"area_mm2":`...)
	if dst, ok = appendJSONFloat(dst, d.AreaMM2); !ok {
		return dst, false
	}
	dst = append(dst, `,"raw":`...)
	if dst, ok = appendJSONFloat(dst, d.Raw); !ok {
		return dst, false
	}
	dst = append(dst, `,"yield":`...)
	if dst, ok = appendJSONFloat(dst, d.Yield); !ok {
		return dst, false
	}
	dst = append(dst, `,"kgd":`...)
	if dst, ok = appendJSONFloat(dst, d.KGD); !ok {
		return dst, false
	}
	return append(dst, '}'), true
}

// appendPackagingJSON encodes a packaging.Result in its wire order.
func appendPackagingJSON(dst []byte, p *packaging.Result) ([]byte, bool) {
	scheme, ok := schemeLabel(p.Scheme)
	if !ok {
		return dst, false
	}
	flow, ok := flowLabel(p.Flow)
	if !ok {
		return dst, false
	}
	dst = append(dst, `{"scheme":`...)
	dst = appendJSONString(dst, scheme)
	dst = append(dst, `,"flow":`...)
	dst = appendJSONString(dst, flow)
	for _, f := range [...]struct {
		key string
		val float64
	}{
		{`,"raw_package":`, p.RawPackage},
		{`,"package_defects":`, p.PackageDefects},
		{`,"wasted_kgd":`, p.WastedKGD},
		{`,"yield":`, p.Yield},
		{`,"footprint_mm2":`, p.FootprintMM2},
		{`,"interposer_area_mm2":`, p.InterposerAreaMM2},
		{`,"substrate_area_mm2":`, p.SubstrateAreaMM2},
		{`,"raw_interposer":`, p.RawInterposer},
		{`,"raw_substrate":`, p.RawSubstrate},
		{`,"assembly_cost":`, p.AssemblyCost},
	} {
		dst = append(dst, f.key...)
		if dst, ok = appendJSONFloat(dst, f.val); !ok {
			return dst, false
		}
	}
	return append(dst, '}'), true
}

// appendNREJSON encodes an nre.Breakdown in its wire order.
func appendNREJSON(dst []byte, b *nre.Breakdown) ([]byte, bool) {
	var ok bool
	dst = append(dst, `{"modules":`...)
	if dst, ok = appendJSONFloat(dst, b.Modules); !ok {
		return dst, false
	}
	dst = append(dst, `,"chips":`...)
	if dst, ok = appendJSONFloat(dst, b.Chips); !ok {
		return dst, false
	}
	dst = append(dst, `,"packages":`...)
	if dst, ok = appendJSONFloat(dst, b.Packages); !ok {
		return dst, false
	}
	dst = append(dst, `,"d2d":`...)
	if dst, ok = appendJSONFloat(dst, b.D2D); !ok {
		return dst, false
	}
	return append(dst, '}'), true
}

// questionLabel returns the wire name of a question the fast path may
// encode — the same set Question.MarshalText accepts.
func questionLabel(q Question) (string, bool) {
	switch q {
	case QuestionTotalCost, QuestionRE, QuestionWafers, QuestionCrossoverQuantity,
		QuestionOptimalChipletCount, QuestionAreaCrossover, QuestionSweepBest,
		QuestionSearchBest:
		return q.String(), true
	default:
		return "", false
	}
}

// schemeLabel mirrors packaging.Scheme.MarshalText.
func schemeLabel(s packaging.Scheme) (string, bool) {
	switch s {
	case packaging.SoC, packaging.MCM, packaging.InFO, packaging.TwoPointFiveD:
		return s.String(), true
	default:
		return "", false
	}
}

// flowLabel mirrors packaging.Flow.MarshalText.
func flowLabel(f packaging.Flow) (string, bool) {
	switch f {
	case packaging.ChipLast, packaging.ChipFirst:
		return f.String(), true
	default:
		return "", false
	}
}

// appendJSONFloat appends a float64 exactly as encoding/json renders
// it: shortest round-trip form, 'f' notation in [1e-6, 1e21) and 'e'
// notation outside with a single-digit exponent's leading zero
// trimmed. Non-finite values — which encoding/json rejects with an
// UnsupportedValueError — report ok=false so the caller falls back and
// reproduces that exact error.
func appendJSONFloat(dst []byte, f float64) ([]byte, bool) {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return dst, false
	}
	format := byte('f')
	if abs := math.Abs(f); abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// encoding/json canonicalizes "e-09" to "e-9".
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst, true
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends a quoted JSON string exactly as
// encoding/json renders it with HTML escaping on (the Marshal and
// Encoder default): control characters, quotes, backslashes, '<', '>'
// and '&' escaped, invalid UTF-8 replaced with U+FFFD, and the JSONP
// hazards U+2028/U+2029 escaped.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, `\ufffd`...)
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}
