package actuary

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"

	"chipletactuary/internal/cost"
	"chipletactuary/internal/explore"
	"chipletactuary/internal/packaging"
	"chipletactuary/internal/sweep"
	"chipletactuary/internal/tech"
)

// PartitionPoint is one entry of a chiplet-count sweep (see
// Session.Evaluate with QuestionOptimalChipletCount).
type PartitionPoint = explore.PartitionPoint

// KGDCacheStats reports the shared die-cost cache's counters.
type KGDCacheStats = cost.CacheStats

// Question selects what a Request asks about.
type Question int

const (
	// QuestionTotalCost evaluates Request.System's RE plus amortized
	// NRE under Request.Policy (§3.2 + §3.3).
	QuestionTotalCost Question = iota
	// QuestionRE evaluates only the recurring cost of Request.System.
	QuestionRE
	// QuestionWafers computes the wafer starts per node needed to ship
	// Request.Quantity units of Request.System (defaults to the
	// system's own quantity).
	QuestionWafers
	// QuestionCrossoverQuantity finds the production quantity at which
	// Request.Challenger's total per-unit cost drops to
	// Request.Incumbent's (§4.2).
	QuestionCrossoverQuantity
	// QuestionOptimalChipletCount sweeps partitions 1..Request.MaxK of
	// Request.ModuleAreaMM2 on Request.Node and returns the feasible
	// points plus the cheapest (§6).
	QuestionOptimalChipletCount
	// QuestionAreaCrossover finds the module area in
	// [Request.LoMM2, Request.HiMM2] where Request.K chiplets start
	// beating the monolithic SoC on RE (§4.1).
	QuestionAreaCrossover
	// QuestionSweepBest streams Request.Grid through online
	// aggregators and returns the Request.TopK cheapest points, the
	// RE-vs-NRE Pareto front and a summary — O(K) memory however large
	// the grid.
	QuestionSweepBest
	// QuestionSearchBest answers the same best-points question as
	// QuestionSweepBest but adaptively: coarse-to-fine refinement,
	// successive halving and lower-bound pruning (Request.Search)
	// evaluate a fraction of Request.Grid's candidates. A pruning-only
	// spec reproduces the exhaustive top-K exactly; refinement and
	// halving trade exactness for evaluations within the spec's
	// tolerance. The answer reports what was actually walked
	// (SearchBest.Stats).
	QuestionSearchBest
)

// String implements fmt.Stringer with the names ParseQuestion accepts.
func (q Question) String() string {
	switch q {
	case QuestionTotalCost:
		return "total-cost"
	case QuestionRE:
		return "re"
	case QuestionWafers:
		return "wafers"
	case QuestionCrossoverQuantity:
		return "crossover-quantity"
	case QuestionOptimalChipletCount:
		return "optimal-chiplet-count"
	case QuestionAreaCrossover:
		return "area-crossover"
	case QuestionSweepBest:
		return "sweep-best"
	case QuestionSearchBest:
		return "search-best"
	default:
		return fmt.Sprintf("Question(%d)", int(q))
	}
}

// ParseQuestion converts a scenario-file question name to a Question.
func ParseQuestion(name string) (Question, error) {
	switch strings.ToLower(name) {
	case "total-cost", "total":
		return QuestionTotalCost, nil
	case "re", "recurring":
		return QuestionRE, nil
	case "wafers":
		return QuestionWafers, nil
	case "crossover-quantity", "payback":
		return QuestionCrossoverQuantity, nil
	case "optimal-chiplet-count", "optimal-k":
		return QuestionOptimalChipletCount, nil
	case "area-crossover", "turning":
		return QuestionAreaCrossover, nil
	case "sweep-best", "best":
		return QuestionSweepBest, nil
	case "search-best", "search":
		return QuestionSearchBest, nil
	default:
		return 0, fmt.Errorf("actuary: unknown question %q (want total-cost, re, wafers, crossover-quantity, optimal-chiplet-count, area-crossover, sweep-best or search-best)", name)
	}
}

// Request is one question of a batch. Only the fields the question
// consumes need to be set:
//
//	QuestionTotalCost            System, Policy
//	QuestionRE                   System
//	QuestionWafers               System, Quantity (0 ⇒ System.Quantity)
//	QuestionCrossoverQuantity    Incumbent, Challenger
//	QuestionOptimalChipletCount  Node, ModuleAreaMM2, MaxK, Scheme, D2D, Quantity
//	QuestionAreaCrossover        Node, K, Scheme, D2D, LoMM2, HiMM2
//	QuestionSweepBest            Grid, TopK, Policy
//	QuestionSearchBest           Grid, TopK, Policy, Search
type Request struct {
	// ID optionally labels the request; it is echoed in the Result and
	// in structured errors. Purely for the caller's bookkeeping.
	ID string
	// Question selects the evaluation.
	Question Question

	// System is the subject of TotalCost, RE and Wafers questions.
	System System
	// Policy selects NRE amortization for TotalCost (the zero value is
	// PerSystemUnit, the paper's default).
	Policy AmortizationPolicy
	// Quantity is the production volume for Wafers (0 falls back to
	// System.Quantity) and OptimalChipletCount.
	Quantity float64

	// Incumbent and Challenger are the two designs compared by
	// CrossoverQuantity.
	Incumbent  System
	Challenger System

	// Node, ModuleAreaMM2, Scheme and D2D describe the design space of
	// the sweep questions. A nil D2D means zero interface overhead.
	Node          string
	ModuleAreaMM2 float64
	Scheme        Scheme
	D2D           D2DOverhead
	// MaxK bounds the OptimalChipletCount sweep; K is the fixed
	// partition count of AreaCrossover.
	MaxK int
	K    int
	// LoMM2 and HiMM2 bracket the AreaCrossover search.
	LoMM2 float64
	HiMM2 float64

	// Grid declares the design space of a SweepBest request; it is
	// expanded lazily, never materialized. TopK bounds the best-point
	// list (0 means 1).
	Grid *SweepGrid
	TopK int
	// ShardIndex and ShardCount restrict a SweepBest request to one
	// stripe of its grid's candidate index space: shard ShardIndex of
	// ShardCount (0 ≤ ShardIndex < ShardCount). ShardCount 0 means
	// unsharded. A sharded answer covers only its stripe — an empty
	// stripe is a valid empty SweepBest, not an error — and the
	// ShardCount answers of a grid merge into exactly the unsharded
	// answer (see SweepBestMerger). SearchBest requests accept the
	// same spec: each shard searches its own stripe adaptively. Other
	// questions reject a non-zero shard spec.
	ShardIndex int
	ShardCount int

	// Search configures a SearchBest request's adaptive strategies;
	// nil means lower-bound pruning only (exhaustive-exact answer).
	Search *SearchSpec
}

// Result is the answer to one Request. Index, ID and Question echo
// the request; exactly one of the payload fields is populated on
// success, selected by the question. On failure Err holds an *Error
// and the payload fields are zero.
type Result struct {
	// Index is the request's position in the batch — results are
	// always returned in input order, so Results[i].Index == i.
	Index int
	// ID echoes Request.ID.
	ID string
	// Question echoes Request.Question.
	Question Question

	// TotalCost answers QuestionTotalCost.
	TotalCost *TotalCost
	// RE answers QuestionRE.
	RE *REBreakdown
	// Wafers answers QuestionWafers.
	Wafers *WaferDemand
	// Quantity answers QuestionCrossoverQuantity.
	Quantity float64
	// AreaMM2 answers QuestionAreaCrossover.
	AreaMM2 float64
	// Points and Best answer QuestionOptimalChipletCount.
	Points []PartitionPoint
	Best   int
	// SweepBest answers QuestionSweepBest.
	SweepBest *SweepBest
	// SearchBest answers QuestionSearchBest.
	SearchBest *SearchBest

	// Err is nil on success and an *Error otherwise; one bad request
	// never fails the rest of the batch.
	Err error
}

// SweepPoint pairs one generated design point with its evaluated cost.
type SweepPoint struct {
	// ID, Node, Scheme, AreaMM2, K and Quantity identify the design
	// point (see DesignPoint).
	ID       string
	Node     string
	Scheme   Scheme
	AreaMM2  float64
	K        int
	Quantity float64
	// Total is the point's RE + amortized-NRE cost.
	Total TotalCost
}

// SweepBest is the payload of QuestionSweepBest: the online reductions
// of one streamed design-space sweep.
type SweepBest struct {
	// Top holds the K cheapest feasible points, ascending total cost.
	Top []SweepPoint
	// Pareto is the RE-vs-amortized-NRE front, ascending RE.
	Pareto []SweepPoint
	// Summary covers every feasible point's total cost.
	Summary SweepSummary
	// Pruned counts points dropped before evaluation (reticle or
	// interposer infeasibility); Deduped counts scheme-duplicate
	// monolithic candidates skipped on multi-scheme grids; Infeasible
	// counts points that failed during evaluation, with FirstFailure
	// retaining the first such error so a typo'd axis value (an
	// unknown node, say) does not silently shrink the answered space.
	// FirstFailureCandidate is the failing point's position in the
	// grid's odometer order — shard answers carry it so the merge
	// layer reports the globally first failure, exactly like an
	// unsharded walk, whatever the fan-out.
	Pruned                int
	Deduped               int
	Infeasible            int
	FirstFailure          error
	FirstFailureCandidate int
}

// Option configures a Session (functional options).
type Option func(*sessionConfig)

type sessionConfig struct {
	db           *TechDatabase
	params       PackagingParams
	hasParams    bool
	workers      int
	minWorkers   int
	maxWorkers   int
	hasBounds    bool
	cacheSize    int
	hasCacheSz   bool
	partialsSize int
	hasPartials  bool
}

// WithTech selects the technology database (default: the built-in
// one).
func WithTech(db *TechDatabase) Option {
	return func(c *sessionConfig) { c.db = db }
}

// WithPackaging selects the packaging parameters (default: the
// calibrated constants).
func WithPackaging(p PackagingParams) Option {
	return func(c *sessionConfig) { c.params = p; c.hasParams = true }
}

// WithWorkers sets how many goroutines Evaluate fans a batch out
// over. The default is runtime.GOMAXPROCS(0); values below 1 are
// raised to 1.
func WithWorkers(n int) Option {
	return func(c *sessionConfig) { c.workers = n }
}

// WithWorkerBounds makes the worker pool elastic: Session.Resize (and
// controllers built on it, such as fleet.Resizer) may move the pool
// width anywhere in [min, max] while streams are running. min must be
// at least 1 and max at least min. The initial width is the
// WithWorkers value (or its default) clamped into the bounds. Without
// this option the pool is fixed at the WithWorkers width and Resize
// is a no-op at that width.
func WithWorkerBounds(min, max int) Option {
	return func(c *sessionConfig) { c.minWorkers, c.maxWorkers, c.hasBounds = min, max, true }
}

// WithCacheSize bounds the shared known-good-die cost cache (entries,
// not bytes). The default is 4096; 0 disables memoization entirely.
func WithCacheSize(n int) Option {
	return func(c *sessionConfig) { c.cacheSize = n; c.hasCacheSz = true }
}

// DefaultCacheSize is the KGD cache bound used when WithCacheSize is
// not given. A sweep touches one cache entry per distinct die shape,
// so 4096 covers even the Figure 10 portfolio workloads many times
// over.
const DefaultCacheSize = 4096

// WithPartialsCacheSize bounds the evaluator's partial-result caches
// (entries, not bytes): the packaging geometry/yield partials shared
// by the RE and NRE engines, and the NRE uniform-term memo. The
// default is DefaultPartialsCacheSize; 0 disables partial memoization
// (the KGD cache is bounded separately by WithCacheSize).
func WithPartialsCacheSize(n int) Option {
	return func(c *sessionConfig) { c.partialsSize = n; c.hasPartials = true }
}

// DefaultPartialsCacheSize is the partials-cache bound used when
// WithPartialsCacheSize is not given. A sweep touches one packaging
// partial per distinct (scheme, flow, die count, total area) tuple and
// one NRE entry per distinct (node, scheme, geometry) tuple, so 8192
// holds every partial of the paper's sweep workloads at once.
const DefaultPartialsCacheSize = explore.DefaultPartialsCacheSize

// PartialsStats reports the partial-result caches' counters (see
// Session.PartialsCacheStats).
type PartialsStats = explore.PartialsStats

// Session is the batch evaluation handle: a technology database and
// packaging parameter set, a worker pool width, and a shared die-cost
// cache. Apart from the worker-pool target width — which Resize moves
// within the WithWorkerBounds range — a Session is immutable after
// construction and safe for concurrent use; one Session is meant to
// serve many Evaluate calls.
type Session struct {
	db        *TechDatabase
	params    PackagingParams
	ev        *explore.Evaluator
	workerMin int
	workerMax int
	// workerTarget is the pool width running streams converge to; see
	// Resize. It always sits inside [workerMin, workerMax].
	workerTarget atomic.Int64
	metrics      *sessionMetrics
}

// NewSession builds a Session. With no options it mirrors New():
// built-in technology database, calibrated packaging parameters, one
// worker per CPU, and a DefaultCacheSize-entry KGD cache.
func NewSession(opts ...Option) (*Session, error) {
	cfg := sessionConfig{workers: runtime.GOMAXPROCS(0), cacheSize: DefaultCacheSize,
		partialsSize: DefaultPartialsCacheSize}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.db == nil {
		cfg.db = tech.Default()
	}
	if !cfg.hasParams {
		cfg.params = packaging.DefaultParams()
	}
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	if !cfg.hasBounds {
		// A fixed pool is the degenerate elastic one: min = max = width.
		cfg.minWorkers, cfg.maxWorkers = cfg.workers, cfg.workers
	}
	if cfg.minWorkers < 1 || cfg.maxWorkers < cfg.minWorkers {
		return nil, fmt.Errorf("actuary: invalid worker bounds [%d, %d] (want 1 ≤ min ≤ max)",
			cfg.minWorkers, cfg.maxWorkers)
	}
	ev, err := explore.NewEvaluatorWithCaches(cfg.db, cfg.params, cfg.cacheSize, cfg.partialsSize)
	if err != nil {
		return nil, err
	}
	s := &Session{db: cfg.db, params: cfg.params, ev: ev,
		workerMin: cfg.minWorkers, workerMax: cfg.maxWorkers,
		metrics: &sessionMetrics{}}
	s.workerTarget.Store(int64(clampWorkers(cfg.workers, cfg.minWorkers, cfg.maxWorkers)))
	return s, nil
}

// clampWorkers clamps a requested width into [min, max].
func clampWorkers(n, min, max int) int {
	if n < min {
		return min
	}
	if n > max {
		return max
	}
	return n
}

// Workers returns the worker pool's current target width.
func (s *Session) Workers() int { return int(s.workerTarget.Load()) }

// WorkerBounds returns the pool's [min, max] resize range. A fixed
// pool (no WithWorkerBounds) reports min == max.
func (s *Session) WorkerBounds() (min, max int) { return s.workerMin, s.workerMax }

// Resize moves the worker pool's target width to n, clamped into the
// WithWorkerBounds range, and returns the applied value. Running
// streams converge to the new width: growth spawns workers into live
// streams within a few milliseconds; shrink retires workers as they
// finish their current request — no evaluation is abandoned. Safe for
// concurrent use; the last call wins.
func (s *Session) Resize(n int) int {
	n = clampWorkers(n, s.workerMin, s.workerMax)
	s.workerTarget.Store(int64(n))
	return n
}

// Tech returns the session's technology database.
func (s *Session) Tech() *TechDatabase { return s.db }

// Packaging returns the session's packaging parameters.
func (s *Session) Packaging() PackagingParams { return s.params }

// Evaluator exposes the underlying exploration evaluator for advanced
// use (sensitivity studies, custom sweeps).
func (s *Session) Evaluator() *explore.Evaluator { return s.ev }

// CacheStats reports the shared KGD cache's hit/miss counters.
func (s *Session) CacheStats() KGDCacheStats { return s.ev.Cost.CacheStats() }

// PartialsCacheStats reports the partial-result caches' hit/miss
// counters: the packaging geometry/yield partials shared by the RE and
// NRE engines, and the NRE uniform-term memo. On sweep workloads the
// hit rates should sit near 1 — a low rate means the working set
// outgrew WithPartialsCacheSize.
func (s *Session) PartialsCacheStats() PartialsStats { return s.ev.PartialsCacheStats() }

// Evaluate answers a batch of requests, fanning them out over the
// session's worker pool. Results come back in input order — result i
// always answers request i. Failures are isolated per request: a bad
// node or infeasible sweep yields a Result with a structured *Error
// while the rest of the batch proceeds. Canceling ctx stops the
// batch; requests not yet evaluated return ErrCanceled results.
//
// Evaluate is the materialized face of the streaming pipeline: it
// wraps the slice in a RequestSource, drives Session.Stream, and
// reassembles results by index. Callers whose batches are generated
// rather than hand-built should use Stream directly and skip the
// slice.
func (s *Session) Evaluate(ctx context.Context, reqs []Request) []Result {
	results := make([]Result, len(reqs))
	if len(reqs) == 0 {
		return results
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// Blocking delivery: this loop drains until the channel closes, so
	// a mid-batch cancel never discards work a worker already finished
	// (the pre-streaming Evaluate kept every computed result, and
	// callers rely on that for partial batches).
	ch, err := s.Stream(ctx, SliceSource(reqs), streamWorkerCap(len(reqs)), streamDeliverAll())
	if err != nil { // unreachable: the source is never nil
		for i := range reqs {
			results[i] = s.fail(i, reqs[i], err)
		}
		return results
	}
	delivered := make([]bool, len(reqs))
	for r := range ch {
		results[r.Index] = r
		delivered[r.Index] = true
	}
	// A canceled stream abandons undelivered requests; restore the
	// per-request contract with explicit ErrCanceled results.
	for i, ok := range delivered {
		if !ok {
			cause := ctx.Err()
			if cause == nil {
				cause = context.Canceled
			}
			results[i] = s.fail(i, reqs[i], cause)
		}
	}
	return results
}

// fail builds the structured-error Result for request i.
func (s *Session) fail(i int, req Request, err error) Result {
	return s.failID(i, req.ID, req.Question, err)
}

// failID is fail for callers that never built a Request — the
// run-batched stream path carries only the result identity.
func (s *Session) failID(i int, id string, q Question, err error) Result {
	return Result{Index: i, ID: id, Question: q, Err: &Error{
		Code:     classify(err),
		Index:    i,
		ID:       id,
		Question: q,
		Err:      err,
	}}
}

// evaluateOne answers a single request synchronously. The context is
// consulted only by long-running per-request sweeps (QuestionSweepBest
// checks it periodically); scheduling-level cancellation lives in
// Stream.
func (s *Session) evaluateOne(ctx context.Context, i int, req Request) Result {
	res := Result{Index: i, ID: req.ID, Question: req.Question}
	if req.Question != QuestionSweepBest && req.Question != QuestionSearchBest &&
		(req.ShardIndex != 0 || req.ShardCount != 0) {
		return s.fail(i, req, fmt.Errorf("actuary: question %v does not accept a shard spec", req.Question))
	}
	switch req.Question {
	case QuestionTotalCost:
		tc, err := s.ev.Single(req.System, req.Policy)
		if err != nil {
			return s.fail(i, req, err)
		}
		res.TotalCost = &tc

	case QuestionRE:
		re, err := s.ev.Cost.RE(req.System)
		if err != nil {
			return s.fail(i, req, err)
		}
		res.RE = &re

	case QuestionWafers:
		quantity := req.Quantity
		if quantity == 0 {
			quantity = req.System.Quantity
		}
		wd, err := s.ev.Cost.Wafers(req.System, quantity)
		if err != nil {
			return s.fail(i, req, err)
		}
		res.Wafers = &wd

	case QuestionCrossoverQuantity:
		q, err := s.ev.CrossoverQuantity(req.Incumbent, req.Challenger)
		if err != nil {
			return s.fail(i, req, err)
		}
		res.Quantity = q

	case QuestionOptimalChipletCount:
		points, best, err := s.ev.OptimalChipletCount(req.Node, req.ModuleAreaMM2,
			req.MaxK, req.Scheme, req.D2D, req.Quantity)
		if err != nil {
			return s.fail(i, req, err)
		}
		res.Points, res.Best = points, best

	case QuestionAreaCrossover:
		area, err := s.ev.AreaCrossover(req.Node, req.K, req.Scheme, req.D2D,
			req.LoMM2, req.HiMM2)
		if err != nil {
			return s.fail(i, req, err)
		}
		res.AreaMM2 = area

	case QuestionSweepBest:
		best, err := s.sweepBest(ctx, req)
		if err != nil {
			return s.fail(i, req, err)
		}
		res.SweepBest = best

	case QuestionSearchBest:
		best, err := s.searchBest(ctx, req)
		if err != nil {
			return s.fail(i, req, err)
		}
		res.SearchBest = best

	default:
		return s.fail(i, req, fmt.Errorf("actuary: unknown question %v", req.Question))
	}
	return res
}

// sweepBest streams a request's grid through the online aggregators:
// lazy generation with reticle and interposer pruning, one total-cost
// evaluation per surviving point, O(TopK + front) retained state. A
// shard spec restricts the walk to one stripe of the candidate space;
// shard answers merge back into the unsharded answer (SweepBestMerger).
func (s *Session) sweepBest(ctx context.Context, req Request) (*SweepBest, error) {
	return s.sweepBestWalk(ctx, req, nil, 0, nil)
}

// SweepBestCheckpointed answers one sweep-best request exactly like
// Evaluate would, but makes the walk durable: every `every` grid
// candidates it snapshots the generator cursor and the aggregator
// state into a SweepCheckpoint and hands it to save (persist it with
// SaveCheckpointFile, ship it over a wire — the snapshot does not
// alias walk state). A run killed at any point — even SIGKILL — can
// be restarted with the last saved checkpoint as resume, skips
// straight to its cursor without re-evaluating a single point, and
// returns a SweepBest byte-identical to an uninterrupted run's.
//
// resume nil starts fresh. A resume checkpoint must carry the
// fingerprint of this request (SweepFingerprint): resuming a
// different grid, top-K bound, policy or shard spec is rejected with
// an error wrapping ErrCheckpointMismatch (errors.Is-detectable)
// rather than silently mixing two workloads. A save error aborts the
// walk — a run that cannot persist progress should fail loudly, not
// complete with a stale checkpoint behind it.
//
// Snapshots are taken between candidates, so `every` trades replay
// work against checkpoint I/O; values below 1 are raised to 1. The
// returned error taxonomy matches Evaluate's (the structured *Error
// wrapper is applied by Evaluate, not here).
func (s *Session) SweepBestCheckpointed(ctx context.Context, req Request, resume *SweepCheckpoint, every int, save func(*SweepCheckpoint) error) (*SweepBest, error) {
	if req.Question == 0 {
		req.Question = QuestionSweepBest
	}
	if req.Question != QuestionSweepBest {
		return nil, fmt.Errorf("actuary: SweepBestCheckpointed wants a sweep-best request, not %v", req.Question)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return s.sweepBestWalk(ctx, req, resume, every, save)
}

// sweepBestWalk is the one implementation behind sweepBest and
// SweepBestCheckpointed: the plain path passes a nil resume and save.
func (s *Session) sweepBestWalk(ctx context.Context, req Request, resume *SweepCheckpoint, every int, save func(*SweepCheckpoint) error) (*SweepBest, error) {
	if req.Grid == nil {
		return nil, fmt.Errorf("actuary: sweep-best request needs a Grid")
	}
	if err := req.Grid.Validate(); err != nil {
		return nil, err
	}
	if err := validShardSpec(req.ShardIndex, req.ShardCount); err != nil {
		return nil, err
	}
	if every < 1 {
		every = 1
	}
	k := req.TopK
	if k < 1 {
		k = 1
	}
	// The ranking definitions are shared with SweepBestMerger (see
	// merge.go): shards and the merge must rank under one metric.
	top := newSweepTopK(k)
	front := newSweepPareto()
	var summary SweepSummary
	var firstErr error
	firstCand := 0
	infeasible := 0
	// The abort hook fires per candidate, so cancellation lands even
	// inside a long all-pruned stretch of the grid walk.
	gen := req.Grid.Points(sweep.ReticleFit(), sweep.InterposerFit(s.params)).
		AbortWhen(func() bool { return ctx.Err() != nil })
	if req.ShardCount > 0 {
		gen.Shard(req.ShardIndex, req.ShardCount)
	}
	fingerprint := ""
	if resume != nil || save != nil {
		var err error
		if fingerprint, err = SweepFingerprint(req); err != nil {
			return nil, err
		}
	}
	if resume != nil {
		// A checkpoint is only as trustworthy as its provenance: the
		// fingerprint binds it to this exact workload, and the restore
		// path re-validates every piece of state it adopts.
		if resume.Fingerprint != fingerprint {
			return nil, fmt.Errorf("actuary: %w: checkpoint fingerprint %.12s does not match sweep grid %q (%.12s)",
				ErrCheckpointMismatch, resume.Fingerprint, req.Grid.Name, fingerprint)
		}
		if resume.Infeasible < 0 || resume.FirstFailureCandidate < 0 || resume.Summary.Count < 0 {
			return nil, fmt.Errorf("actuary: %w: checkpoint carries negative counters (%d infeasible, candidate %d, %d summarized)",
				ErrCheckpointMismatch, resume.Infeasible, resume.FirstFailureCandidate, resume.Summary.Count)
		}
		if _, err := gen.Restore(resume.Cursor); err != nil {
			return nil, fmt.Errorf("actuary: %w: %w", ErrCheckpointMismatch, err)
		}
		// Every feasible point fed all three aggregators, so the
		// observation counters are one number: the summary count.
		if err := top.SetState(sweep.TopKState[SweepPoint]{K: k, Seen: resume.Summary.Count, Items: resume.Top}); err != nil {
			return nil, fmt.Errorf("actuary: %w: %w", ErrCheckpointMismatch, err)
		}
		if err := front.SetState(sweep.ParetoState[SweepPoint]{Seen: resume.Summary.Count, Front: resume.Pareto}); err != nil {
			return nil, fmt.Errorf("actuary: %w: %w", ErrCheckpointMismatch, err)
		}
		summary = resume.Summary
		infeasible = resume.Infeasible
		firstErr = resume.FirstFailure
		firstCand = resume.FirstFailureCandidate
	}
	lastSaved := gen.Cursor().Candidate
	for {
		p, ok := gen.Next()
		if !ok {
			break
		}
		tc, err := s.ev.Single(p.System, req.Policy)
		if err != nil {
			infeasible++
			if firstErr == nil {
				firstErr = err
				firstCand = gen.LastCandidate()
			}
		} else {
			sp := SweepPoint{ID: p.ID, Node: p.Node, Scheme: p.Scheme,
				AreaMM2: p.AreaMM2, K: p.K, Quantity: p.Quantity, Total: tc}
			top.Observe(sp)
			front.Observe(sp)
			summary.Observe(sp.ID, tc.Total())
		}
		if cur := gen.Cursor(); save != nil && cur.Candidate-lastSaved >= every {
			cp := &SweepCheckpoint{
				Fingerprint:           fingerprint,
				Cursor:                cur,
				Top:                   top.Sorted(),
				Pareto:                front.Front(),
				Summary:               summary,
				Infeasible:            infeasible,
				FirstFailure:          firstErr,
				FirstFailureCandidate: firstCand,
			}
			if err := save(cp); err != nil {
				return nil, fmt.Errorf("actuary: saving sweep checkpoint: %w", err)
			}
			lastSaved = cur.Candidate
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if summary.Count == 0 && req.ShardCount == 0 {
		// Unsharded: an empty answer means the whole grid is infeasible.
		// A shard, in contrast, may legitimately own zero feasible
		// candidates — it returns an empty SweepBest and the merge layer
		// decides whether the grid as a whole came up empty.
		err := fmt.Errorf("actuary: %w: no feasible point in sweep grid %q (%d pruned, %d infeasible)",
			explore.ErrInfeasible, req.Grid.Name, gen.Stats().Pruned, infeasible)
		if firstErr != nil {
			// Keep the first per-point cause in the chain so the error
			// taxonomy survives: a typo'd node classifies ErrUnknownNode
			// (classify checks it before ErrInfeasible), not infeasible.
			err = fmt.Errorf("%w; first failure: %w", err, firstErr)
		}
		return nil, err
	}
	return &SweepBest{
		Top:                   top.Sorted(),
		Pareto:                front.Front(),
		Summary:               summary,
		Pruned:                gen.Stats().Pruned,
		Deduped:               gen.Stats().Deduped,
		Infeasible:            infeasible,
		FirstFailure:          firstErr,
		FirstFailureCandidate: firstCand,
	}, nil
}

// validShardSpec checks a wire shard spec: ShardCount 0 (with index 0)
// means unsharded; otherwise the index must name one of the ShardCount
// stripes.
func validShardSpec(index, count int) error {
	if count == 0 && index == 0 {
		return nil
	}
	if count < 1 || index < 0 || index >= count {
		return fmt.Errorf("actuary: invalid shard spec %d of %d (want 0 ≤ index < count)", index, count)
	}
	return nil
}

// Portfolio evaluates a family of systems that share module, chip and
// package designs (§3.3), keyed by system name. Portfolios are
// inherently cross-system — every member's NRE share depends on every
// other member — so they ride beside the per-request batch API rather
// than inside it.
func (s *Session) Portfolio(systems []System, policy AmortizationPolicy) (map[string]TotalCost, error) {
	return s.ev.Portfolio(systems, policy)
}
